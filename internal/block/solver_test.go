package block

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/sss-lab/blocksptrsv/internal/exec"
	"github.com/sss-lab/blocksptrsv/internal/gen"
	"github.com/sss-lab/blocksptrsv/internal/kernels"
	"github.com/sss-lab/blocksptrsv/internal/sparse"
)

func residual(l *sparse.CSR[float64], x, b []float64) float64 {
	worst := 0.0
	for i := 0; i < l.Rows; i++ {
		var sum float64
		for k := l.RowPtr[i]; k < l.RowPtr[i+1]; k++ {
			sum += l.Val[k] * x[l.ColIdx[k]]
		}
		r := math.Abs(sum-b[i]) / (1 + math.Abs(b[i]))
		if r > worst {
			worst = r
		}
	}
	return worst
}

// testMatrices is a small structural zoo covering every kernel-selection
// branch: diagonal, chain, shallow-wide, deep, power-law, grid.
func testMatrices() map[string]*sparse.CSR[float64] {
	return map[string]*sparse.CSR[float64]{
		"diag":      gen.DiagonalOnly(700, 1),
		"chain":     gen.SerialChain(600, 0.3, 2),
		"bipartite": gen.BipartiteBlock(800, 5, 3),
		"layered":   gen.Layered(900, 40, 5, 0.3, 4),
		"powerlaw":  gen.PowerLaw(800, 4, 0.05, 5),
		"grid":      gen.GridLaplacian5(30, 25, 6),
		"tiny":      gen.SerialChain(3, 0, 7),
	}
}

func TestAllKindsMatchSerialOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	mats := testMatrices()
	for _, workers := range []int{1, 8} {
		pool := exec.NewPool(workers)
		for name, l := range mats {
			b := gen.RandVec(l.Rows, 91)
			want := make([]float64, l.Rows)
			ref, err := kernels.NewSerialSolver(l)
			if err != nil {
				t.Fatal(err)
			}
			ref.Solve(b, want)
			for _, kind := range []Kind{Recursive, ColumnBlock, RowBlock} {
				for _, reorder := range []bool{false, true} {
					opts := Options{
						Pool:         pool,
						Kind:         kind,
						NSeg:         1 + rng.Intn(7),
						MinBlockRows: 1 + rng.Intn(200),
						Reorder:      reorder,
						Adaptive:     true,
					}
					s, err := Preprocess(l, opts)
					if err != nil {
						t.Fatalf("%s/%v reorder=%v: %v", name, kind, reorder, err)
					}
					x := make([]float64, l.Rows)
					s.Solve(b, x)
					if r := residual(l, x, b); r > 1e-9 {
						t.Fatalf("workers=%d %s/%v reorder=%v residual=%g", workers, name, kind, reorder, r)
					}
					// Second solve must agree (reusable state); tolerance
					// covers atomic-accumulation order nondeterminism.
					x2 := make([]float64, l.Rows)
					s.Solve(b, x2)
					for i := range x {
						if d := math.Abs(x[i] - x2[i]); d > 1e-10*(1+math.Abs(x[i])) {
							t.Fatalf("%s/%v: second solve differs at %d", name, kind, i)
						}
					}
				}
			}
		}
	}
}

func TestForcedKernelsMatchOracle(t *testing.T) {
	pool := exec.NewPool(6)
	l := gen.Layered(1200, 30, 5, 0.2, 10)
	b := gen.RandVec(l.Rows, 11)
	want := make([]float64, l.Rows)
	ref, _ := kernels.NewSerialSolver(l)
	ref.Solve(b, want)
	for _, tk := range []kernels.TriKernel{kernels.TriLevelSet, kernels.TriSyncFree, kernels.TriCuSparseLike, kernels.TriSerial} {
		for _, sk := range []kernels.SpMVKernel{kernels.SpMVScalarCSR, kernels.SpMVVectorCSR, kernels.SpMVScalarDCSR, kernels.SpMVVectorDCSR, kernels.SpMVSerial} {
			s, err := Preprocess(l, Options{
				Pool: pool, Kind: Recursive, MinBlockRows: 150,
				Reorder: true, Adaptive: false, ForceTri: tk, ForceSpMV: sk,
			})
			if err != nil {
				t.Fatalf("force %v/%v: %v", tk, sk, err)
			}
			x := make([]float64, l.Rows)
			s.Solve(b, x)
			if r := residual(l, x, b); r > 1e-9 {
				t.Fatalf("force %v/%v residual=%g", tk, sk, r)
			}
		}
	}
}

func TestForceCompletelyParallelRejectedOnDependentBlock(t *testing.T) {
	l := gen.SerialChain(100, 0, 1)
	_, err := Preprocess(l, Options{
		Workers: 2, Kind: Recursive, MinBlockRows: 10,
		Adaptive: false, ForceTri: kernels.TriCompletelyParallel,
	})
	if err == nil {
		t.Fatal("forcing completely-parallel on a chain must fail")
	}
}

func TestAdaptiveSelectionPerStructure(t *testing.T) {
	pool := exec.NewPool(4)

	// Pure diagonal: every triangular block must select completely-parallel.
	s, err := Preprocess(gen.DiagonalOnly(5000, 1), Options{
		Pool: pool, Kind: Recursive, MinBlockRows: 500, Reorder: true, Adaptive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := s.TriKernelCounts()
	if len(counts) != 1 || counts[kernels.TriCompletelyParallel] == 0 {
		t.Fatalf("diag kernel counts: %v", counts)
	}

	// A single un-split very deep chain must select the cuSPARSE-like
	// kernel (nlevels > 20000 branch of Algorithm 7).
	deep := gen.SerialChain(25000, 0, 2)
	s, err = Preprocess(deep, Options{
		Pool: pool, Kind: ColumnBlock, NSeg: 1, Reorder: false, Adaptive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts = s.TriKernelCounts()
	if counts[kernels.TriCuSparseLike] != 1 {
		t.Fatalf("deep chain kernel counts: %v", counts)
	}

	// A shallow layered system must pick level-set for blocks with few
	// levels and short rows.
	shallow := gen.Layered(4000, 8, 3, 0, 3)
	s, err = Preprocess(shallow, Options{
		Pool: pool, Kind: ColumnBlock, NSeg: 1, Reorder: false, Adaptive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts = s.TriKernelCounts()
	if counts[kernels.TriLevelSet] != 1 {
		t.Fatalf("shallow kernel counts: %v", counts)
	}
}

func TestRecursionRespectsMinBlockRowsAndMaxDepth(t *testing.T) {
	n := 1 << 12
	l := gen.Banded(n, 4, 0.5, 20)
	s, err := Preprocess(l, Options{
		Workers: 2, Kind: Recursive, MinBlockRows: 100, Reorder: false, Adaptive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range s.tris {
		if size := tb.hi - tb.lo; size > 100 {
			t.Fatalf("leaf of %d rows exceeds MinBlockRows=100", size)
		}
	}
	// MaxDepth=3 -> exactly 8 leaves, 7 squares for a power-of-two size.
	s, err = Preprocess(l, Options{
		Workers: 2, Kind: Recursive, MinBlockRows: 1, MaxDepth: 3, Adaptive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumTriBlocks() != 8 || s.NumSquareBlocks() != 7 {
		t.Fatalf("depth 3: %d tris, %d squares; want 8, 7", s.NumTriBlocks(), s.NumSquareBlocks())
	}
}

func TestSquareNNZConsistency(t *testing.T) {
	l := gen.Layered(2000, 50, 6, 0.2, 21)
	s, err := Preprocess(l, Options{
		Workers: 2, Kind: Recursive, MinBlockRows: 100, Reorder: true, Adaptive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	triNNZ := 0
	for _, tb := range s.tris {
		triNNZ += tb.strictCSC.NNZ() + len(tb.diag)
	}
	if triNNZ+s.SquareNNZ() != l.NNZ() {
		t.Fatalf("nnz accounting: tri %d + sq %d != total %d", triNNZ, s.SquareNNZ(), l.NNZ())
	}
}

// TestReorderMovesNNZIntoSquares checks the §3.3 claim on a scrambled
// layered system: level-set reordering concentrates nonzeros in the square
// parts (deterministic given the fixed seeds).
func TestReorderMovesNNZIntoSquares(t *testing.T) {
	l := gen.Layered(3000, 60, 6, 0, 22)
	// Scramble with a random topological order so the natural layered
	// order does not already coincide with the level order.
	scramble := topoShuffle(l, rand.New(rand.NewSource(23)))
	ls, err := sparse.PermuteSym(l, scramble)
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Workers: 2, Kind: Recursive, MinBlockRows: 200, Adaptive: true}
	plain, err := Preprocess(ls, base)
	if err != nil {
		t.Fatal(err)
	}
	base.Reorder = true
	reordered, err := Preprocess(ls, base)
	if err != nil {
		t.Fatal(err)
	}
	if reordered.SquareNNZ() < plain.SquareNNZ() {
		t.Fatalf("reordering reduced square nnz: %d -> %d", plain.SquareNNZ(), reordered.SquareNNZ())
	}
}

// topoShuffle returns a random topological order of the lower-triangular
// dependency DAG (newIdx form), used to scramble test matrices.
func topoShuffle(l *sparse.CSR[float64], rng *rand.Rand) []int {
	n := l.Rows
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		for k := l.RowPtr[i]; k < l.RowPtr[i+1]; k++ {
			if l.ColIdx[k] != i {
				indeg[i]++
			}
		}
	}
	csc := l.ToCSC()
	var ready []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	newIdx := make([]int, n)
	for pos := 0; pos < n; pos++ {
		pick := rng.Intn(len(ready))
		v := ready[pick]
		ready[pick] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		newIdx[v] = pos
		for k := csc.ColPtr[v]; k < csc.ColPtr[v+1]; k++ {
			w := csc.RowIdx[k]
			if w == v {
				continue
			}
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, w)
			}
		}
	}
	return newIdx
}

func TestInstrumentation(t *testing.T) {
	l := gen.Layered(1500, 20, 5, 0, 24)
	s, err := Preprocess(l, Options{
		Workers: 2, Kind: Recursive, MinBlockRows: 200, Reorder: true,
		Adaptive: true, Instrument: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := gen.RandVec(l.Rows, 25)
	x := make([]float64, l.Rows)
	s.Solve(b, x)
	s.Solve(b, x)
	st := s.Stats()
	if st.Solves != 2 {
		t.Fatalf("solves=%d", st.Solves)
	}
	if st.TriCalls != 2*int64(s.NumTriBlocks()) || st.SpMVCalls != 2*int64(s.NumSquareBlocks()) {
		t.Fatalf("calls: %+v for %d tris %d squares", st, s.NumTriBlocks(), s.NumSquareBlocks())
	}
	if st.TriTime <= 0 || (s.NumSquareBlocks() > 0 && st.SpMVTime <= 0) {
		t.Fatalf("times not accumulated: %+v", st)
	}
	s.ResetStats()
	if s.Stats() != (SolveStats{}) {
		t.Fatal("ResetStats did not clear")
	}
}

func TestSolveMulti(t *testing.T) {
	l := gen.Layered(800, 10, 4, 0, 26)
	s, err := Preprocess(l, Options{Workers: 4, Kind: Recursive, MinBlockRows: 100, Reorder: true, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	const nrhs = 5
	bs := make([][]float64, nrhs)
	xs := make([][]float64, nrhs)
	for k := range bs {
		bs[k] = gen.RandVec(l.Rows, int64(30+k))
		xs[k] = make([]float64, l.Rows)
	}
	s.SolveMulti(bs, xs)
	for k := range bs {
		if r := residual(l, xs[k], bs[k]); r > 1e-9 {
			t.Fatalf("rhs %d residual %g", k, r)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched SolveMulti")
		}
	}()
	s.SolveMulti(bs, xs[:2])
}

func TestSolvePanicsOnBadLengths(t *testing.T) {
	l := gen.DiagonalOnly(10, 1)
	s, err := Preprocess(l, Options{Workers: 1, Kind: Recursive, MinBlockRows: 4, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Solve(make([]float64, 9), make([]float64, 10))
}

func TestPreprocessRejectsBadInput(t *testing.T) {
	bad := sparse.FromDense(2, 2, []float64{1, 1, 1, 1})
	if _, err := Preprocess(bad, Options{Workers: 1, Adaptive: true}); err == nil {
		t.Fatal("accepted non-triangular input")
	}
	// Singular diagonal.
	b := sparse.NewBuilder[float64](2, 2)
	b.Add(0, 0, 1)
	b.Add(1, 0, 1)
	if _, err := Preprocess(b.BuildCSR(), Options{Workers: 1, Adaptive: true}); err == nil {
		t.Fatal("accepted singular input")
	}
}

func TestSolveInPlaceAliasing(t *testing.T) {
	l := gen.Layered(500, 10, 4, 0, 27)
	s, err := Preprocess(l, Options{Workers: 2, Kind: Recursive, MinBlockRows: 64, Reorder: true, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	b := gen.RandVec(l.Rows, 28)
	bCopy := append([]float64(nil), b...)
	s.Solve(b, b) // x aliases b
	if r := residual(l, b, bCopy); r > 1e-9 {
		t.Fatalf("aliased solve residual %g", r)
	}
}

func TestFloat32Solver(t *testing.T) {
	l64 := gen.Layered(900, 15, 4, 0, 29)
	l := sparse.ConvertValues[float32](l64)
	s, err := Preprocess(l, Options{Workers: 4, Kind: Recursive, MinBlockRows: 128, Reorder: true, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := kernels.NewSerialSolver(l)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float32, l.Rows)
	for i := range b {
		b[i] = float32(i%7) - 3
	}
	want := make([]float32, l.Rows)
	ref.Solve(b, want)
	x := make([]float32, l.Rows)
	s.Solve(b, x)
	for i := range x {
		if math.Abs(float64(x[i]-want[i])) > 1e-3*(1+math.Abs(float64(want[i]))) {
			t.Fatalf("x[%d]=%g want %g", i, x[i], want[i])
		}
	}
}

func TestNamesAndMetadata(t *testing.T) {
	l := gen.DiagonalOnly(32, 1)
	s, err := Preprocess(l, Options{Workers: 1, Kind: Recursive, MinBlockRows: 8, Reorder: true, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows() != 32 {
		t.Fatal("Rows")
	}
	if got := s.Name(); got != "block-recursive" {
		t.Fatalf("Name: %q", got)
	}
	s2, _ := Preprocess(l, Options{Workers: 1, Kind: RowBlock, NSeg: 2, Adaptive: true})
	if got := s2.Name(); !strings.Contains(got, "row") || !strings.Contains(got, "noreorder") {
		t.Fatalf("Name: %q", got)
	}
	for k, want := range map[Kind]string{Recursive: "recursive", ColumnBlock: "column", RowBlock: "row", Kind(9): "unknown"} {
		if k.String() != want {
			t.Fatalf("Kind(%d)=%q", k, k.String())
		}
	}
	// Diagonal matrix has no strictly-lower entries anywhere.
	if s.SquareNNZ() != 0 {
		t.Fatalf("diag SquareNNZ=%d", s.SquareNNZ())
	}
	if p := s.Perm(); p != nil {
		// Reordering a diagonal matrix is the identity and may be skipped
		// entirely; if present it must be the identity.
		for i, v := range p {
			if v != i {
				t.Fatalf("non-identity perm on diagonal matrix at %d", i)
			}
		}
	}
}

func TestEmptySystem(t *testing.T) {
	l := &sparse.CSR[float64]{Rows: 0, Cols: 0, RowPtr: []int{0}}
	s, err := Preprocess(l, Options{Workers: 1, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Solve(nil, nil)
}

func TestDescribe(t *testing.T) {
	l := gen.Layered(2000, 30, 5, 0.1, 777)
	s, err := Preprocess(l, Options{Workers: 2, Kind: Recursive, MinBlockRows: 300, Reorder: true, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	d := s.Describe()
	for _, want := range []string{"block-recursive", "triangular", "square blocks hold", "b-updates", "tri kernels"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe missing %q:\n%s", want, d)
		}
	}
	// Deterministic output.
	if s.Describe() != d {
		t.Fatal("Describe not deterministic")
	}
	// A diagonal system reports a single kernel class and no squares.
	sd, err := Preprocess(gen.DiagonalOnly(100, 1), Options{Workers: 1, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sd.Describe(), "completely-parallel") || !strings.Contains(sd.Describe(), "spmv kernels: none") {
		t.Fatalf("diag Describe:\n%s", sd.Describe())
	}
}
