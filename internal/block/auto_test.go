package block

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/sss-lab/blocksptrsv/internal/exec"
	"github.com/sss-lab/blocksptrsv/internal/gen"
	"github.com/sss-lab/blocksptrsv/internal/kernels"
)

func TestPreprocessAutoSolvesCorrectly(t *testing.T) {
	pool := exec.NewPool(3)
	for name, l := range testMatrices() {
		o := Options{
			Pool: pool, Kind: Recursive, MinBlockRows: 200,
			Reorder: true, Adaptive: true, Calibrate: true, Auto: true,
		}
		s, err := PreprocessAuto(l, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b := gen.RandVec(l.Rows, 900)
		x := make([]float64, l.Rows)
		s.Solve(b, x)
		if r := residual(l, x, b); r > 1e-9 {
			t.Fatalf("%s: residual %g", name, r)
		}
	}
}

func TestPreprocessAutoSkipsRedundantCandidates(t *testing.T) {
	// A diagonal matrix: identity reorder and a single effective partition
	// shape; auto must not fail and should return a working solver.
	l := gen.DiagonalOnly(500, 1)
	s, err := PreprocessAuto(l, Options{
		Workers: 2, Kind: Recursive, MinBlockRows: 1 << 30, Reorder: true, Adaptive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumTriBlocks() != 1 {
		t.Fatalf("expected single triangle, got %d", s.NumTriBlocks())
	}
	b := gen.RandVec(500, 901)
	x := make([]float64, 500)
	s.Solve(b, x)
	if r := residual(l, x, b); r > 1e-12 {
		t.Fatalf("residual %g", r)
	}
}

// TestOptionSpaceFuzz sweeps random option combinations through the whole
// pipeline: whatever the configuration, Preprocess either returns an error
// or a solver whose solution matches the oracle.
func TestOptionSpaceFuzz(t *testing.T) {
	pool := exec.NewPool(3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(800)
		var l = gen.Layered(n, 1+rng.Intn(60), 1+rng.Intn(6), rng.Float64()*0.5, seed)
		o := Options{
			Pool:         pool,
			Kind:         Kind(rng.Intn(3)),
			NSeg:         rng.Intn(10),
			MinBlockRows: rng.Intn(300),
			MaxDepth:     rng.Intn(8),
			Reorder:      rng.Intn(2) == 0,
			Adaptive:     rng.Intn(2) == 0,
			Calibrate:    rng.Intn(3) == 0,
			Auto:         rng.Intn(3) == 0,
		}
		if !o.Adaptive {
			// Pick a runnable forced pair (completely-parallel cannot be
			// forced onto blocks with dependencies).
			tris := []kernels.TriKernel{kernels.TriLevelSet, kernels.TriSyncFree, kernels.TriCuSparseLike, kernels.TriSerial}
			spmvs := []kernels.SpMVKernel{kernels.SpMVScalarCSR, kernels.SpMVVectorCSR, kernels.SpMVScalarDCSR, kernels.SpMVVectorDCSR, kernels.SpMVSerial}
			o.ForceTri = tris[rng.Intn(len(tris))]
			o.ForceSpMV = spmvs[rng.Intn(len(spmvs))]
		}
		var s *Solver[float64]
		var err error
		if o.Auto {
			s, err = PreprocessAuto(l, o)
		} else {
			s, err = Preprocess(l, o)
		}
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		b := gen.RandVec(n, seed+1)
		x := make([]float64, n)
		s.Solve(b, x)
		return residual(l, x, b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(902))}); err != nil {
		t.Fatal(err)
	}
}
