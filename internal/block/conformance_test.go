package block

import (
	"fmt"
	"math"
	"testing"

	"github.com/sss-lab/blocksptrsv/internal/exec"
	"github.com/sss-lab/blocksptrsv/internal/gen"
	"github.com/sss-lab/blocksptrsv/internal/kernels"
	"github.com/sss-lab/blocksptrsv/internal/sparse"
)

// The cross-kernel conformance matrix: every forceable triangular kernel,
// on every launcher style, under every partition shape, in both
// precisions, over a structurally diverse corpus — each combination's
// solution compared elementwise against the same-precision serial
// reference. This is the lockdown the observability layer rides on: any
// kernel/launcher/partition interaction that corrupts a solution fails
// here by name.

// conformanceCorpus builds the generated test systems. Structure is the
// axis: near-dense, diagonal-only (completely parallel), a serial chain
// (maximally level-bound), a layered DAG (the typical middle), and a
// sparse band whose strict part leaves many rows empty.
func conformanceCorpus(short bool) []struct {
	name string
	l    *sparse.CSR[float64]
} {
	n := 600
	if short {
		n = 160
	}
	return []struct {
		name string
		l    *sparse.CSR[float64]
	}{
		{"dense-ish", gen.DenseLower(80, 11)},
		{"diagonal", gen.DiagonalOnly(n, 12)},
		{"long-chain", gen.SerialChain(n, 0.1, 13)},
		{"layered", gen.Layered(n, 20, 4, 0, 14)},
		{"sparse-band", gen.Banded(n, 30, 0.05, 15)},
	}
}

func TestKernelConformanceMatrix(t *testing.T) {
	corpus := conformanceCorpus(testing.Short())

	styles := []exec.LaunchStyle{exec.LaunchSpin, exec.LaunchSpawn, exec.LaunchChannel}
	pools := make(map[exec.LaunchStyle]exec.Launcher, len(styles))
	for _, st := range styles {
		p := exec.NewLauncher(st, 3)
		pools[st] = p
		defer exec.CloseLauncher(p)
	}

	kinds := []Kind{ColumnBlock, RowBlock, Recursive}
	triKernels := []kernels.TriKernel{
		kernels.TriLevelSet, kernels.TriSyncFree, kernels.TriCuSparseLike, kernels.TriSerial,
	}

	for _, m := range corpus {
		for _, style := range styles {
			pool := pools[style]
			for _, kind := range kinds {
				for _, tri := range triKernels {
					name := fmt.Sprintf("%s/%s/%s/%s", m.name, style, kind, tri)
					t.Run(name+"/float64", func(t *testing.T) {
						conformanceCase[float64](t, m.l, pool, kind, tri, 1e-8)
					})
					t.Run(name+"/float32", func(t *testing.T) {
						conformanceCase[float32](t, m.l, pool, kind, tri, 2e-3)
					})
				}
			}
		}
	}
}

// TestCompletelyParallelConformance covers the fifth kernel: forcing it is
// only legal when every block is diagonal-only, so it gets the diagonal
// matrix across all launchers and partitions instead of the full corpus.
func TestCompletelyParallelConformance(t *testing.T) {
	n := 600
	if testing.Short() {
		n = 160
	}
	l := gen.DiagonalOnly(n, 21)
	for _, style := range []exec.LaunchStyle{exec.LaunchSpin, exec.LaunchSpawn, exec.LaunchChannel} {
		pool := exec.NewLauncher(style, 3)
		for _, kind := range []Kind{ColumnBlock, RowBlock, Recursive} {
			t.Run(fmt.Sprintf("%s/%s", style, kind), func(t *testing.T) {
				conformanceCase[float64](t, l, pool, kind, kernels.TriCompletelyParallel, 1e-12)
				conformanceCase[float32](t, l, pool, kind, kernels.TriCompletelyParallel, 1e-5)
			})
		}
		exec.CloseLauncher(pool)
	}
}

// conformanceCase solves one (matrix, pool, partition, kernel, precision)
// combination and compares the solution elementwise against the serial
// reference computed in the same precision.
func conformanceCase[T sparse.Float](t *testing.T, l64 *sparse.CSR[float64], pool exec.Launcher, kind Kind, tri kernels.TriKernel, tol float64) {
	t.Helper()
	l := sparse.ConvertValues[T](l64)
	o := Options{
		Pool: pool, Kind: kind, NSeg: 4, MinBlockRows: 16,
		Reorder: true, ForceTri: tri,
	}
	s, err := Preprocess(l, o)
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	b := toVec[T](gen.RandVec(l.Rows, 7))
	x := make([]T, l.Rows)
	s.Solve(b, x)

	ref := make([]T, l.Rows)
	kernels.SerialSolveCSR(l, b, ref)
	assertClose(t, x, ref, tol)
}

func toVec[T sparse.Float](v []float64) []T {
	out := make([]T, len(v))
	for i, x := range v {
		out[i] = T(x)
	}
	return out
}

// assertClose compares elementwise with mixed absolute/relative tolerance
// (parallel kernels legitimately sum in a different order).
func assertClose[T sparse.Float](t *testing.T, got, want []T, tol float64) {
	t.Helper()
	for i := range want {
		g, w := float64(got[i]), float64(want[i])
		if math.IsNaN(g) || math.IsInf(g, 0) {
			t.Fatalf("x[%d] = %v (reference %v)", i, g, w)
		}
		if diff := math.Abs(g - w); diff > tol*(1+math.Abs(w)) {
			t.Fatalf("x[%d] = %v, reference %v (diff %.3e > tol %.1e)", i, g, w, diff, tol)
		}
	}
}
