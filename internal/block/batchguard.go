package block

import (
	"context"
	"fmt"
	"time"

	"github.com/sss-lab/blocksptrsv/internal/faultinject"
	"github.com/sss-lab/blocksptrsv/internal/kernels"
)

// The guarded batched solve path: SolveBatchContext runs the same block
// schedule as SolveBatch with the cancellation machinery of SolveContext
// threaded between plan steps. It exists for live-traffic consumers (the
// solver daemon) that coalesce concurrent single-RHS requests into one
// multi-RHS solve but still need per-request robustness: a cancelled or
// deadlined batch stops at the next step boundary instead of running to
// completion, and the stall watchdog aborts a schedule whose progress
// counter stops moving.
//
// Granularity caveat: unlike the single-RHS guarded kernels, the batch
// kernels do not poll the guard inside a block, so cancellation and the
// watchdog act *between* plan steps — a solve is abandoned at the next
// block boundary, and a hang inside one batch kernel is beyond the
// watchdog's reach. The fully-guarded single-RHS path (SolveContext)
// remains the recovery rung for callers that need in-block guarantees;
// the daemon degrades to it when a batch fails.

// SolveBatchContext solves L·X = B for k right-hand sides like SolveBatch
// (row-major n×k blocks, B and X may alias), with ctx cancellation and the
// solver's Options.StallTimeout checked between plan steps. Length
// mismatches return an error instead of panicking. Unlike SolveContext,
// the residual-verification ladder (Options.VerifyResidual) is not run —
// batched callers verify or degrade per right-hand side. Not safe for
// concurrent use; use sessions.
func (s *Solver[T]) SolveBatchContext(ctx context.Context, b, x []T, k int) error {
	if k == 1 {
		return s.SolveContext(ctx, b, x)
	}
	if err := checkBatchArgs(s.n, len(b), len(x), k); err != nil {
		return err
	}
	if len(s.wbp) < s.n*k {
		s.wbp = make([]T, s.n*k)
		if s.perm != nil {
			s.xbp = make([]T, s.n*k)
		}
	}
	return s.solveBatchContextWith(ctx, b, x, k, s.wbp, s.xbp, nil, &s.stats)
}

// SolveBatchContext is the session counterpart of Solver.SolveBatchContext:
// the same guarantees, private scratch, concurrency-safe across sessions.
func (ses *Session[T]) SolveBatchContext(ctx context.Context, b, x []T, k int) error {
	if k == 1 {
		return ses.SolveContext(ctx, b, x)
	}
	n := ses.s.n
	if err := checkBatchArgs(n, len(b), len(x), k); err != nil {
		return err
	}
	if len(ses.wbp) < n*k {
		ses.wbp = make([]T, n*k)
		if ses.s.perm != nil {
			ses.xbp = make([]T, n*k)
		}
	}
	return ses.s.solveBatchContextWith(ctx, b, x, k, ses.wbp, ses.xbp, ses.states, &ses.stats)
}

func checkBatchArgs(n, lenB, lenX, k int) error {
	if k <= 0 || lenB != n*k || lenX != n*k {
		return fmt.Errorf("block: SolveBatchContext got len(b)=%d len(x)=%d k=%d want %d", lenB, lenX, k, n*k)
	}
	return nil
}

// solveBatchContextWith mirrors solveBatchWith with a guard check between
// steps: the cancellation watcher and the stall watchdog trip the guard,
// and the schedule is abandoned at the next step boundary. Like the plain
// batch path it assigns one TraceRecorder solve id per batch (stored in
// stats.LastTraceID) and records one step entry per plan step.
func (s *Solver[T]) solveBatchContextWith(ctx context.Context, b, x []T, k int, wb, xb []T, states []*kernels.SyncFreeState, stats *SolveStats) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	g, stopWatchers := s.startGuard(ctx)
	defer stopWatchers()

	rec := s.opts.Trace
	sid := s.beginTrace()
	stats.LastTraceID = sid
	w := wb[:s.n*k]
	xp := x
	if s.perm != nil {
		permuteRowsInto(w, b, s.perm, k)
		xp = xb[:s.n*k]
	} else {
		copy(w, b)
	}
	for si, st := range s.steps {
		if g.Tripped() {
			return s.guardCause(g)
		}
		var t0 time.Time
		if rec != nil {
			t0 = time.Now()
		}
		if st.kind == triSeg {
			if faultinject.Enabled {
				faultinject.PanicAt("tri-block", st.idx)
			}
			tb := &s.tris[st.idx]
			s.solveTriBatch(tb, w[tb.lo*k:tb.hi*k], xp[tb.lo*k:tb.hi*k], k, stateFor(states, st.idx, tb))
			g.Step()
			mTriCalls[tb.kernel].Inc()
			if rec != nil {
				rec.record(sid, si, s.meta[si], uint8(tb.kernel), t0, time.Since(t0))
			}
		} else {
			sb := &s.sqs[st.idx]
			kernels.RunSpMVBatch(s.pool, sb.kernel, sb.csr, sb.dcsr,
				xp[sb.spec.colLo*k:sb.spec.colHi*k], w[sb.spec.rowLo*k:sb.spec.rowHi*k], k)
			g.Step()
			mSpMVCalls[sb.kernel].Inc()
			if rec != nil {
				rec.record(sid, si, s.meta[si], uint8(sb.kernel), t0, time.Since(t0))
			}
		}
	}
	if g.Tripped() {
		return s.guardCause(g)
	}
	if faultinject.Enabled {
		if row, v, ok := faultinject.Poison("solution"); ok && row*k < len(xp) {
			xp[row*k] = T(v)
		}
	}
	if s.perm != nil {
		unpermuteRowsInto(x, xp, s.perm, k)
	}
	stats.Solves++
	mSolves.Inc()
	return nil
}
