package block

import "math"

// FormulaBUpdates evaluates the paper's Table-1 closed forms: the number
// of dense-equivalent items updated in the right-hand side b when an
// n-row dense triangle is divided into 2^x triangular parts.
//
//	column block: 2^(x-1)·n + 0.5·n
//	row block:    2·n − 2^(−x)·n
//	recursive:    0.5·n·x + n
func FormulaBUpdates(k Kind, n float64, x int) float64 {
	switch k {
	case ColumnBlock:
		return math.Pow(2, float64(x-1))*n + 0.5*n
	case RowBlock:
		return 2*n - math.Pow(2, -float64(x))*n
	case Recursive:
		return 0.5*n*float64(x) + n
	}
	return math.NaN()
}

// FormulaXLoads evaluates the paper's Table-2 closed forms: the number of
// dense-equivalent items loaded from the solution vector x.
//
//	column block: n − 2^(−x)·n
//	row block:    2^(x-1)·n − 0.5·n
//	recursive:    0.5·n·x
func FormulaXLoads(k Kind, n float64, x int) float64 {
	switch k {
	case ColumnBlock:
		return n - math.Pow(2, -float64(x))*n
	case RowBlock:
		return math.Pow(2, float64(x-1))*n - 0.5*n
	case Recursive:
		return 0.5 * n * float64(x)
	}
	return math.NaN()
}
