package block

import (
	"time"

	"math/rand"

	"github.com/sss-lab/blocksptrsv/internal/kernels"
	"github.com/sss-lab/blocksptrsv/internal/sparse"
)

// CalibrateKernels re-selects the kernel of every block empirically: each
// applicable kernel is timed on the block itself and the fastest wins.
// This takes the paper's adaptive idea (§3.4 — thresholds derived from
// measured performance data) one step further, to per-block measurements,
// which matters when the execution substrate differs from the one the
// thresholds were fitted on. The paper itself notes its thresholds are
// "in general not the optimal choice"; calibration recovers the per-block
// optimum at a preprocessing cost of repeats × kernels solves per block.
//
// Auxiliary structures of losing kernels are dropped afterwards, restoring
// the memory footprint of threshold-based selection.
func (s *Solver[T]) CalibrateKernels(repeats int) {
	if repeats < 1 {
		repeats = 1
	}
	rng := rand.New(rand.NewSource(12345))
	var w, x []T
	grow := func(n int) {
		if len(w) < n {
			w = make([]T, n)
			x = make([]T, n)
		}
	}
	for i := range s.tris {
		tb := &s.tris[i]
		n := len(tb.diag)
		if tb.feats.NLevels <= 1 || n == 0 {
			continue // completely-parallel is already optimal
		}
		grow(n)
		// Ensure every candidate's auxiliary structures exist.
		if tb.state == nil {
			tb.state = kernels.NewSyncFreeState(tb.strictCSC)
		}
		if tb.strictCSR == nil {
			tb.strictCSR = tb.strictCSC.ToCSR()
		}
		if tb.sched == nil {
			tb.sched = kernels.NewMergedSchedule(tb.info, 2*s.pool.Workers())
		}
		best, bestD := tb.kernel, time.Duration(1<<62-1)
		for _, k := range []kernels.TriKernel{
			kernels.TriLevelSet, kernels.TriSyncFree, kernels.TriCuSparseLike, kernels.TriSerial,
		} {
			d := minTime(repeats, func() {
				fillRand(rng, w[:n])
				tb.kernel = k
				s.solveTri(tb, w[:n], x[:n], tb.state)
			})
			if d < bestD {
				best, bestD = k, d
			}
		}
		tb.kernel = best
		// Drop the losers' structures.
		if best != kernels.TriSyncFree {
			tb.state = nil
		}
		if best != kernels.TriCuSparseLike {
			tb.strictCSR = nil
			tb.sched = nil
		}
		// The CSC strict part stays: it backs introspection (SquareNNZ
		// accounting) and the serial/level-set kernels.
	}
	for i := range s.sqs {
		sb := &s.sqs[i]
		rows := sb.spec.rowHi - sb.spec.rowLo
		cols := sb.spec.colHi - sb.spec.colLo
		if sb.feats.NNZ == 0 {
			continue
		}
		grow(maxInt(rows, cols))
		if sb.csr == nil {
			sb.csr = sb.dcsr.ToCSR()
		}
		if sb.dcsr == nil {
			sb.dcsr = sb.csr.ToDCSR()
		}
		fillRand(rng, x[:cols])
		best, bestD := sb.kernel, time.Duration(1<<62-1)
		for _, k := range []kernels.SpMVKernel{
			kernels.SpMVScalarCSR, kernels.SpMVVectorCSR,
			kernels.SpMVScalarDCSR, kernels.SpMVVectorDCSR, kernels.SpMVSerial,
		} {
			k := k
			d := minTime(repeats, func() {
				kernels.RunSpMV(s.pool, k, sb.csr, sb.dcsr, x[:cols], w[:rows])
			})
			if d < bestD {
				best, bestD = k, d
			}
		}
		sb.kernel = best
		switch best {
		case kernels.SpMVScalarDCSR, kernels.SpMVVectorDCSR:
			sb.csr = nil
		default:
			sb.dcsr = nil
		}
	}
}

func minTime(repeats int, fn func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for r := 0; r < repeats; r++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

func fillRand[T sparse.Float](rng *rand.Rand, v []T) {
	for i := range v {
		v[i] = T(rng.Float64() + 0.5)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
