package block

import (
	"time"

	"math/rand"

	"github.com/sss-lab/blocksptrsv/internal/exec"
	"github.com/sss-lab/blocksptrsv/internal/kernels"
	"github.com/sss-lab/blocksptrsv/internal/sparse"
)

// CalibrateKernels re-selects the kernel of every block empirically: each
// applicable kernel is timed on the block itself and the fastest wins.
// This takes the paper's adaptive idea (§3.4 — thresholds derived from
// measured performance data) one step further, to per-block measurements,
// which matters when the execution substrate differs from the one the
// thresholds were fitted on. The paper itself notes its thresholds are
// "in general not the optimal choice"; calibration recovers the per-block
// optimum at a preprocessing cost of repeats × kernels solves per block.
//
// Auxiliary structures of losing kernels are dropped afterwards, restoring
// the memory footprint of threshold-based selection.
func (s *Solver[T]) CalibrateKernels(repeats int) {
	if repeats < 1 {
		repeats = 1
	}
	rng := rand.New(rand.NewSource(12345))
	// Price launch-bound candidates on the launcher actually in use: a
	// kernel whose launch bill alone (launches × measured per-launch
	// latency) exceeds the fastest time measured so far cannot win, so it
	// is skipped without building its auxiliary structures or timing its
	// repeats — which matters most for level-set on deep blocks, where
	// timing it would cost nlevels launches per repeat.
	launchCost := exec.MeasureLaunchCost(s.pool, 32)
	var w, x []T
	grow := func(n int) {
		if len(w) < n {
			w = make([]T, n)
			x = make([]T, n)
		}
	}
	for i := range s.tris {
		tb := &s.tris[i]
		n := len(tb.diag)
		if tb.feats.NLevels <= 1 || n == 0 {
			continue // completely-parallel is already optimal
		}
		grow(n)
		// Levels too narrow to fan out run inline and pay no barrier, so
		// only wider levels enter a kernel's launch bill. This keeps the
		// bills lower bounds: pruning on them is conservative.
		wideLevels := func(width int) int {
			c := 0
			for l := 0; l < tb.info.NLevels; l++ {
				if tb.info.LevelSize(l) >= width {
					c++
				}
			}
			return c
		}
		bill := map[kernels.TriKernel]time.Duration{
			kernels.TriSerial:       0,
			kernels.TriSyncFree:     launchCost, // one persistent launch
			kernels.TriCuSparseLike: time.Duration(wideLevels(2*s.pool.Workers())) * launchCost,
			kernels.TriLevelSet:     time.Duration(wideLevels(2)) * launchCost,
		}
		best, bestD := tb.kernel, time.Duration(1<<62-1)
		// Cheapest launch bills first, so the early measurements set the
		// bar the launch-heavy candidates must clear.
		for _, k := range []kernels.TriKernel{
			kernels.TriSerial, kernels.TriSyncFree, kernels.TriCuSparseLike, kernels.TriLevelSet,
		} {
			if bill[k] >= bestD {
				continue
			}
			// Build only the structures the candidate actually needs.
			switch k {
			case kernels.TriSyncFree:
				if tb.state == nil {
					tb.state = kernels.NewSyncFreeState(tb.strictCSC)
				}
			case kernels.TriCuSparseLike:
				if tb.strictCSR == nil {
					tb.strictCSR = tb.strictCSC.ToCSR()
				}
				if tb.sched == nil {
					tb.sched = kernels.NewMergedSchedule(tb.info, 0, s.pool.Workers())
				}
			}
			d := minTime(repeats, func() {
				fillRand(rng, w[:n])
				tb.kernel = k
				s.solveTri(tb, w[:n], x[:n], tb.state)
			})
			if d < bestD {
				best, bestD = k, d
			}
		}
		tb.kernel = best
		// Drop the losers' structures.
		if best != kernels.TriSyncFree {
			tb.state = nil
		}
		if best != kernels.TriCuSparseLike {
			tb.strictCSR = nil
			tb.sched = nil
		}
		// The CSC strict part stays: it backs introspection (SquareNNZ
		// accounting) and the serial/level-set kernels.
	}
	for i := range s.sqs {
		sb := &s.sqs[i]
		rows := sb.spec.rowHi - sb.spec.rowLo
		cols := sb.spec.colHi - sb.spec.colLo
		if sb.feats.NNZ == 0 {
			continue
		}
		grow(maxInt(rows, cols))
		if sb.csr == nil {
			sb.csr = sb.dcsr.ToCSR()
		}
		if sb.dcsr == nil {
			sb.dcsr = sb.csr.ToDCSR()
		}
		fillRand(rng, x[:cols])
		best, bestD := sb.kernel, time.Duration(1<<62-1)
		for _, k := range []kernels.SpMVKernel{
			kernels.SpMVScalarCSR, kernels.SpMVVectorCSR,
			kernels.SpMVScalarDCSR, kernels.SpMVVectorDCSR, kernels.SpMVSerial,
		} {
			k := k
			d := minTime(repeats, func() {
				kernels.RunSpMV(s.pool, k, sb.csr, sb.dcsr, x[:cols], w[:rows])
			})
			if d < bestD {
				best, bestD = k, d
			}
		}
		sb.kernel = best
		switch best {
		case kernels.SpMVScalarDCSR, kernels.SpMVVectorDCSR:
			sb.csr = nil
		default:
			sb.dcsr = nil
		}
	}
}

func minTime(repeats int, fn func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for r := 0; r < repeats; r++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

func fillRand[T sparse.Float](rng *rand.Rand, v []T) {
	for i := range v {
		v[i] = T(rng.Float64() + 0.5)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
