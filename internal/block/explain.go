package block

import (
	"fmt"
	"strings"
)

// Explain renders the full preprocessed plan before any solve runs: the
// configuration, the partition tree in execution order (indented by
// recursion depth), each block's adapt features and selected kernel, and
// the traffic/kernel summaries. The output is deterministic — two
// identical Preprocess calls explain identically — so tests and tooling
// may diff it.
//
// Solvers reloaded with LoadSolver explain flat (the recursion depths are
// a preprocessing artefact and are not serialised).
func (s *Solver[T]) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: n=%d, %d triangular + %d square blocks\n",
		s.Name(), s.n, len(s.tris), len(s.sqs))
	fmt.Fprintf(&b, "options: partition=%s workers=%d minblockrows=%d maxdepth=%d nseg=%d reorder=%v adaptive=%v\n",
		s.opts.Kind, s.pool.Workers(), s.opts.MinBlockRows, s.opts.MaxDepth, s.opts.NSeg,
		s.opts.Reorder, s.opts.Adaptive)
	fmt.Fprintf(&b, "reordered=%v traffic: %d b-updates, %d x-loads (dense-equivalent)\n",
		s.perm != nil, s.traffic.BUpdates, s.traffic.XLoads)
	b.WriteString("execution plan:\n")
	for si, st := range s.steps {
		depth := 0
		if si < len(s.stepDepth) {
			depth = s.stepDepth[si]
		}
		indent := strings.Repeat("  ", depth)
		if st.kind == triSeg {
			tb := &s.tris[st.idx]
			f := tb.feats
			fmt.Fprintf(&b, "%4d  %stri  #%d [%d:%d)  rows=%d strict-nnz=%d nnz/row=%.2f levels=%d  kernel=%s\n",
				si, indent, st.idx, tb.lo, tb.hi, f.Rows, f.StrictNNZ, f.NNZPerRow, f.NLevels, tb.kernel)
		} else {
			sb := &s.sqs[st.idx]
			f := sb.feats
			fmt.Fprintf(&b, "%4d  %ssq   #%d [%d:%d)x[%d:%d)  rows=%d nnz=%d nnz/row=%.2f empty=%.0f%%  kernel=%s\n",
				si, indent, st.idx, sb.spec.rowLo, sb.spec.rowHi, sb.spec.colLo, sb.spec.colHi,
				f.Rows, f.NNZ, f.NNZPerRow, 100*f.EmptyRatio, sb.kernel)
		}
	}
	fmt.Fprintf(&b, "tri kernels: %v\n", formatTriCounts(s.TriKernelCounts()))
	fmt.Fprintf(&b, "spmv kernels: %v\n", formatSpMVCounts(s.SpMVKernelCounts()))
	return b.String()
}

// Explain renders the shared solver's plan (see Solver.Explain).
func (ses *Session[T]) Explain() string { return ses.s.Explain() }
