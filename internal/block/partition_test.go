package block

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/sss-lab/blocksptrsv/internal/gen"
)

func TestBuildPlanInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500)
		o := Options{
			Kind:         Kind(rng.Intn(3)),
			NSeg:         1 + rng.Intn(9),
			MinBlockRows: 1 + rng.Intn(64),
			MaxDepth:     rng.Intn(6),
		}
		plan := buildPlan(n, o)
		if n == 0 {
			return plan == nil
		}
		return planChecks(n, plan) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(100))}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanChecksCatchesBadPlans(t *testing.T) {
	bad := [][]segSpec{
		// Gap in the diagonal.
		{{triSeg, 0, 4, 0, 4, 0}, {triSeg, 5, 8, 5, 8, 0}},
		// Square reads unsolved columns.
		{{triSeg, 0, 4, 0, 4, 0}, {sqSeg, 4, 8, 0, 5, 0}, {triSeg, 4, 8, 4, 8, 0}},
		// Square updates already-solved rows.
		{{triSeg, 0, 4, 0, 4, 0}, {sqSeg, 2, 8, 0, 4, 0}, {triSeg, 4, 8, 4, 8, 0}},
		// Diagonal not fully covered.
		{{triSeg, 0, 4, 0, 4, 0}},
		// Non-square triangle spec.
		{{triSeg, 0, 4, 0, 5, 0}, {triSeg, 4, 8, 4, 8, 0}},
	}
	for i, plan := range bad {
		if err := planChecks(8, plan); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func TestColumnAndRowPlansShape(t *testing.T) {
	o := Options{Kind: ColumnBlock, NSeg: 4}
	plan := buildPlan(100, o)
	// 4 triangles, 3 rectangles, alternating tri,sq,...,tri.
	if len(plan) != 7 {
		t.Fatalf("column plan length %d", len(plan))
	}
	if plan[0].kind != triSeg || plan[1].kind != sqSeg || plan[6].kind != triSeg {
		t.Fatalf("column plan order: %v", plan)
	}
	// Column rectangles span all remaining rows.
	if plan[1].rowHi != 100 {
		t.Fatalf("column rect rows: %v", plan[1])
	}

	o.Kind = RowBlock
	plan = buildPlan(100, o)
	if len(plan) != 7 {
		t.Fatalf("row plan length %d", len(plan))
	}
	// Row rectangles read all previous columns.
	if plan[1].kind != sqSeg || plan[1].colLo != 0 || plan[1].colHi != 25 {
		t.Fatalf("row rect: %v", plan[1])
	}
}

func TestRecursivePlanShape(t *testing.T) {
	o := Options{Kind: Recursive, MinBlockRows: 1, MaxDepth: 2}
	plan := buildPlan(8, o)
	want := []segSpec{
		{triSeg, 0, 2, 0, 2, 2},
		{sqSeg, 2, 4, 0, 2, 1},
		{triSeg, 2, 4, 2, 4, 2},
		{sqSeg, 4, 8, 0, 4, 0},
		{triSeg, 4, 6, 4, 6, 2},
		{sqSeg, 6, 8, 4, 6, 1},
		{triSeg, 6, 8, 6, 8, 2},
	}
	if len(plan) != len(want) {
		t.Fatalf("plan: %v", plan)
	}
	for i := range want {
		if plan[i] != want[i] {
			t.Fatalf("plan[%d]=%v want %v", i, plan[i], want[i])
		}
	}
}

func TestNSegClampedToN(t *testing.T) {
	plan := buildPlan(3, Options{Kind: ColumnBlock, NSeg: 10})
	if err := planChecks(3, plan); err != nil {
		t.Fatal(err)
	}
	plan = buildPlan(3, Options{Kind: RowBlock, NSeg: 10})
	if err := planChecks(3, plan); err != nil {
		t.Fatal(err)
	}
}

func TestReorderRangesTree(t *testing.T) {
	o := Options{Kind: Recursive, MinBlockRows: 2, MaxDepth: 0}
	passes := reorderRanges(16, o)
	if len(passes) == 0 || len(passes[0]) != 1 || passes[0][0] != [2]int{0, 16} {
		t.Fatalf("pass 0: %v", passes)
	}
	if len(passes[1]) != 2 || passes[1][0] != [2]int{0, 8} || passes[1][1] != [2]int{8, 16} {
		t.Fatalf("pass 1: %v", passes[1])
	}
	// Every pass's ranges are disjoint and within bounds.
	for d, pass := range passes {
		last := 0
		for _, r := range pass {
			if r[0] < last || r[1] <= r[0] || r[1] > 16 {
				t.Fatalf("pass %d bad range %v", d, r)
			}
			last = r[1]
		}
	}
	// Panel partitions get exactly one whole-matrix pass.
	passes = reorderRanges(16, Options{Kind: ColumnBlock, NSeg: 4})
	if len(passes) != 1 || passes[0][0] != [2]int{0, 16} {
		t.Fatalf("panel passes: %v", passes)
	}
	if reorderRanges(0, o) != nil {
		t.Fatal("empty matrix should have no passes")
	}
}

// TestTrafficMatchesPaperFormulas reproduces Tables 1 and 2: the measured
// traffic of each partition on a dense triangle equals the closed forms
// for 2^x parts.
func TestTrafficMatchesPaperFormulas(t *testing.T) {
	n := 64
	l := gen.DenseLower(n, 40)
	for x := 1; x <= 4; x++ {
		parts := 1 << x
		for _, kind := range []Kind{Recursive, ColumnBlock, RowBlock} {
			o := Options{Workers: 1, Kind: kind, Adaptive: true, MinBlockRows: 1}
			if kind == Recursive {
				o.MaxDepth = x
			} else {
				o.NSeg = parts
			}
			s, err := Preprocess(l, o)
			if err != nil {
				t.Fatal(err)
			}
			if s.NumTriBlocks() != parts {
				t.Fatalf("%v x=%d: %d parts", kind, x, s.NumTriBlocks())
			}
			tr := s.Traffic()
			wantB := FormulaBUpdates(kind, float64(n), x)
			wantX := FormulaXLoads(kind, float64(n), x)
			if float64(tr.BUpdates) != wantB {
				t.Errorf("%v x=%d BUpdates=%d want %g", kind, x, tr.BUpdates, wantB)
			}
			if float64(tr.XLoads) != wantX {
				t.Errorf("%v x=%d XLoads=%d want %g", kind, x, tr.XLoads, wantX)
			}
		}
	}
}

func TestFormulaSpotValuesFromPaper(t *testing.T) {
	// Table 1 row "4 parts": col 2.5n, row 1.75n, rec 2n.
	n := 1.0
	cases := []struct {
		kind Kind
		x    int
		b, l float64
	}{
		{ColumnBlock, 2, 2.5, 0.75},
		{RowBlock, 2, 1.75, 1.5},
		{Recursive, 2, 2.0, 1.0},
		{ColumnBlock, 4, 8.5, 0.9375},
		{RowBlock, 4, 1.9375, 7.5},
		{Recursive, 4, 3.0, 2.0},
		{ColumnBlock, 8, 128.5, 0.99609375},
		{Recursive, 8, 5.0, 4.0},
		{Recursive, 16, 9.0, 8.0},
	}
	for _, c := range cases {
		if got := FormulaBUpdates(c.kind, n, c.x); math.Abs(got-c.b) > 1e-12 {
			t.Errorf("B %v x=%d: got %g want %g", c.kind, c.x, got, c.b)
		}
		if got := FormulaXLoads(c.kind, n, c.x); math.Abs(got-c.l) > 1e-12 {
			t.Errorf("X %v x=%d: got %g want %g", c.kind, c.x, got, c.l)
		}
	}
	if !math.IsNaN(FormulaBUpdates(Kind(9), 1, 1)) || !math.IsNaN(FormulaXLoads(Kind(9), 1, 1)) {
		t.Error("unknown kind should be NaN")
	}
}
