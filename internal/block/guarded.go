package block

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"

	"github.com/sss-lab/blocksptrsv/internal/exec"
	"github.com/sss-lab/blocksptrsv/internal/faultinject"
	"github.com/sss-lab/blocksptrsv/internal/kernels"
	"github.com/sss-lab/blocksptrsv/internal/sparse"
)

// The guarded solve path: SolveContext runs the same block schedule as
// Solve, but threads an exec.Guard through every kernel barrier and
// busy-wait so the solve can be cancelled (context), aborted on stall
// (watchdog), and verified (residual ladder). Plain Solve shares none of
// this machinery and stays exactly as fast as before.

// StallError reports a solve the watchdog aborted because its progress
// counter stopped moving. When a sync-free worker was mid-busy-wait at
// abort time, Row/InDegree identify the head of the stalled dependency
// chain — the component whose dependencies never resolved, and how many
// were still outstanding.
type StallError struct {
	Timeout  time.Duration // the armed Options.StallTimeout
	Progress int64         // work items completed before the stall
	Row      int           // stalled component (block-local), valid when HasRow
	InDegree int32         // its unresolved dependency count, valid when HasRow
	HasRow   bool
}

func (e *StallError) Error() string {
	if e.HasRow {
		return fmt.Sprintf("block: solve stalled for %v after %d steps: component %d still waiting on %d dependencies",
			e.Timeout, e.Progress, e.Row, e.InDegree)
	}
	return fmt.Sprintf("block: solve stalled for %v after %d steps", e.Timeout, e.Progress)
}

// ResidualError reports a solution that missed Options.VerifyResidual even
// after every recovery rung (refinement, serial fallback) had its turn.
type ResidualError struct {
	Residual float64 // scaled infinity-norm residual of the final solution
	Tol      float64 // the tolerance it missed
}

func (e *ResidualError) Error() string {
	return fmt.Sprintf("block: residual %.3e exceeds tolerance %.3e after fallback", e.Residual, e.Tol)
}

// errStalled is the watchdog's internal trip cause; guardCause swaps it
// for a StallError enriched with the guard's diagnostics.
var errStalled = errors.New("block: watchdog: progress counter stalled")

// guardScratch holds the lazily allocated vectors of the verification
// ladder (residual and correction). Solver and each Session own one, so
// sessions verify concurrently without sharing.
type guardScratch[T sparse.Float] struct {
	r, d []T
}

func (gs *guardScratch[T]) grow(n int) {
	if len(gs.r) < n {
		gs.r = make([]T, n)
		gs.d = make([]T, n)
	}
}

// SolveContext computes x with L·x = b like Solve, with the guarded
// extras selected by ctx and the solver's Options:
//
//   - ctx cancellation propagates into the kernels' spin loops and level
//     barriers; the error is ctx.Err().
//   - Options.StallTimeout arms a watchdog that aborts a solve whose
//     progress counter stops moving and returns a *StallError with the
//     stalled component.
//   - Options.VerifyResidual > 0 checks the solution and degrades
//     gracefully: one refinement step (Options.Refine), then the serial
//     reference; a *ResidualError is returned only if even the fallback
//     misses the tolerance.
//
// A panicking kernel body still panics out of SolveContext (after the
// pool has restored itself — the pool stays usable); panics are
// programming errors, not solve outcomes. Like Solve, SolveContext is not
// safe for concurrent use on the same Solver; use sessions.
func (s *Solver[T]) SolveContext(ctx context.Context, b, x []T) error {
	return s.solveContextWith(ctx, b, x, s.wp, s.xp, nil, &s.gs, &s.stats)
}

// SolveContext is the session counterpart of Solver.SolveContext:
// the same guarantees, private scratch, concurrency-safe across sessions.
func (ses *Session[T]) SolveContext(ctx context.Context, b, x []T) error {
	return ses.s.solveContextWith(ctx, b, x, ses.wp, ses.xp, ses.states, &ses.gs, &ses.stats)
}

func (s *Solver[T]) solveContextWith(ctx context.Context, b, x []T, w, xpScratch []T, states []*kernels.SyncFreeState, gs *guardScratch[T], stats *SolveStats) error {
	if len(b) != s.n || len(x) != s.n {
		return fmt.Errorf("block: SolveContext got len(b)=%d len(x)=%d want %d", len(b), len(x), s.n)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	g, stopWatchers := s.startGuard(ctx)
	// Stop the watchers before returning — and before a kernel panic
	// unwinds further, so no watchdog outlives its solve.
	defer stopWatchers()

	timed, solveT0 := s.solveClock()
	xp := x
	if s.perm != nil {
		sparse.PermuteVecInto(w, b, s.perm)
		xp = xpScratch
	} else {
		copy(w, b)
	}
	sid := s.beginTrace()
	stats.LastTraceID = sid
	if !s.solveStepsGuarded(w, xp, states, g, stats, sid) {
		return s.guardCause(g)
	}
	if faultinject.Enabled {
		if row, v, ok := faultinject.Poison("solution"); ok && row < len(xp) {
			xp[row] = T(v)
		}
	}
	if s.perm != nil {
		sparse.UnpermuteVecInto(x, xp, s.perm)
	}
	stats.Solves++
	mSolves.Inc()
	observeSolveTime(timed, solveT0)
	if s.opts.VerifyResidual > 0 {
		return s.verifyAndRecover(b, x, w, xpScratch, states, gs, stats)
	}
	return nil
}

// startGuard arms the cancellation machinery shared by the guarded solve
// paths: a fresh guard, a context watcher that trips it on cancellation,
// and (when Options.StallTimeout is set) the stall watchdog. The returned
// stop function tears both watchers down and must run before the solve
// returns — including while a kernel panic unwinds — so no watchdog ever
// outlives its solve.
func (s *Solver[T]) startGuard(ctx context.Context) (*exec.Guard, func()) {
	g := exec.NewGuard()
	stop := make(chan struct{})
	var watchers sync.WaitGroup
	if ctx.Done() != nil {
		watchers.Add(1)
		go func() {
			defer watchers.Done()
			select {
			case <-ctx.Done():
				g.Trip(ctx.Err())
			case <-stop:
			}
		}()
	}
	if s.opts.StallTimeout > 0 {
		watchers.Add(1)
		go func() {
			defer watchers.Done()
			watchdog(g, s.opts.StallTimeout, stop)
		}()
	}
	return g, func() {
		close(stop)
		watchers.Wait()
	}
}

// solveStepsGuarded mirrors solveSteps with a guard check between blocks
// and guarded kernels inside them. It reports whether the schedule ran to
// completion; on false the guard holds the cause. Like solveSteps, the
// per-step clock reads make the whole function a measurement site.
//
//sptrsv:hotpath
//sptrsv:wallclock
func (s *Solver[T]) solveStepsGuarded(w, xp []T, states []*kernels.SyncFreeState, g *exec.Guard, stats *SolveStats, sid int64) bool {
	rec := s.opts.Trace
	instrument := s.opts.Instrument
	timed := instrument || rec != nil
	for si, st := range s.steps {
		if g.Tripped() {
			return false
		}
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		if s.labels != nil {
			pprof.SetGoroutineLabels(s.labels[si])
		}
		if st.kind == triSeg {
			if faultinject.Enabled {
				faultinject.PanicAt("tri-block", st.idx)
			}
			tb := &s.tris[st.idx]
			if !s.solveTriGuarded(tb, w[tb.lo:tb.hi], xp[tb.lo:tb.hi], stateFor(states, st.idx, tb), g) {
				return false
			}
			mTriCalls[tb.kernel].Inc()
			if timed {
				d := time.Since(t0)
				if instrument {
					stats.TriTime += d
					stats.TriCalls++
				}
				if rec != nil {
					rec.record(sid, si, s.meta[si], uint8(tb.kernel), t0, d)
				}
			}
		} else {
			sb := &s.sqs[st.idx]
			kernels.RunSpMV(s.pool, sb.kernel, sb.csr, sb.dcsr,
				xp[sb.spec.colLo:sb.spec.colHi], w[sb.spec.rowLo:sb.spec.rowHi])
			g.Step()
			mSpMVCalls[sb.kernel].Inc()
			if timed {
				d := time.Since(t0)
				if instrument {
					stats.SpMVTime += d
					stats.SpMVCalls++
				}
				if rec != nil {
					rec.record(sid, si, s.meta[si], uint8(sb.kernel), t0, d)
				}
			}
		}
	}
	if s.labels != nil {
		pprof.SetGoroutineLabels(bgLabels)
	}
	return !g.Tripped()
}

//sptrsv:hotpath
func (s *Solver[T]) solveTriGuarded(tb *triBlock[T], w, x []T, state *kernels.SyncFreeState, g *exec.Guard) bool {
	switch tb.kernel {
	case kernels.TriCompletelyParallel:
		// No internal waits to guard; one launch, then one progress step.
		kernels.TriDiagOnlySolve(s.pool, tb.diag, w, x)
		g.Step()
		return true
	case kernels.TriLevelSet:
		return kernels.TriLevelSetSolveGuarded(s.pool, tb.strictCSC, tb.diag, tb.info, w, x, g)
	case kernels.TriSyncFree:
		return kernels.TriSyncFreeSolveGuarded(s.pool, state, tb.strictCSC, tb.diag, w, x, g)
	case kernels.TriCuSparseLike:
		return kernels.TriCuSparseLikeSolveGuarded(s.pool, tb.sched, tb.strictCSR, tb.diag, w, x, g)
	case kernels.TriSerial:
		kernels.TriSerialSolve(tb.strictCSC, tb.diag, w, x)
		g.Step()
		return true
	default:
		panic(fmt.Sprintf("block: unresolved tri kernel %v", tb.kernel))
	}
}

// guardCause converts the guard's trip cause into the caller-facing
// error, enriching the watchdog's sentinel with the stall diagnostics the
// workers recorded on their way out.
func (s *Solver[T]) guardCause(g *exec.Guard) error {
	err := g.Cause()
	if !errors.Is(err, errStalled) {
		return err
	}
	se := &StallError{Timeout: s.opts.StallTimeout, Progress: g.Progress()}
	if row, indeg, ok := g.Stall(); ok {
		se.Row, se.InDegree, se.HasRow = row, indeg, true
	}
	return se
}

// watchdog trips the guard when the progress counter stops moving for
// timeout. It polls at timeout/8 so a stall is detected within at most
// 9/8·timeout of its onset.
func watchdog(g *exec.Guard, timeout time.Duration, stop <-chan struct{}) {
	tick := timeout / 8
	if tick <= 0 {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	last := g.Progress()
	lastMove := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if cur := g.Progress(); cur != last {
				last = cur
				lastMove = time.Now()
				continue
			}
			if time.Since(lastMove) >= timeout {
				g.Trip(errStalled)
				return
			}
		}
	}
}

// verifyAndRecover is the graceful-degradation ladder: check the scaled
// residual, take one refinement step if allowed, fall back to the serial
// reference, and only then give up with a ResidualError. The recovery
// counters land in stats.
func (s *Solver[T]) verifyAndRecover(b, x []T, w, xpScratch []T, states []*kernels.SyncFreeState, gs *guardScratch[T], stats *SolveStats) error {
	if s.orig == nil {
		return errors.New("block: VerifyResidual needs the original matrix, which a deserialised solver does not retain")
	}
	tol := s.opts.VerifyResidual
	if sparse.ScaledResidual(s.orig, x, b) <= tol {
		return nil
	}
	if s.opts.Refine {
		// One iterative-refinement step: r = b − L·x, solve L·δ = r,
		// x += δ. The parallel path may have produced garbage (it just
		// failed verification), but the correction reuses it anyway —
		// when the failure was mild rounding, one step recovers it.
		gs.grow(s.n)
		s.residualInto(gs.r, b, x)
		s.solveWith(gs.r, gs.d, w, xpScratch, states, stats)
		for i := range x {
			x[i] += gs.d[i]
		}
		stats.Refinements++
		mRefinements.Inc()
		if sparse.ScaledResidual(s.orig, x, b) <= tol {
			return nil
		}
	}
	// Last rung: the serial reference on the untouched original matrix.
	kernels.SerialSolveCSR(s.orig, b, x)
	stats.Fallbacks++
	mFallbacks.Inc()
	if res := sparse.ScaledResidual(s.orig, x, b); res > tol {
		return &ResidualError{Residual: res, Tol: tol}
	}
	return nil
}

// residualInto computes r = b − L·x on the original (unpermuted) matrix.
func (s *Solver[T]) residualInto(r, b, x []T) {
	l := s.orig
	for i := 0; i < l.Rows; i++ {
		sum := b[i]
		for k := l.RowPtr[i]; k < l.RowPtr[i+1]; k++ {
			sum -= l.Val[k] * x[l.ColIdx[k]]
		}
		r[i] = sum
	}
}
