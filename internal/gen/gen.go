// Package gen produces the synthetic sparse matrices that substitute for
// the paper's SuiteSparse corpus (159 matrices, §4.1). Every generator is
// deterministic in its seed and emits a solvable lower-triangular CSR
// matrix (full nonzero diagonal) unless documented otherwise.
//
// The generators are parameterised by the structural features that drive
// SpTRSV performance — number of level sets, per-level parallelism,
// row-length distribution (power law vs uniform), and empty-row ratio — so
// the corpus spans the same behaviour space as the paper's dataset,
// including analogues of the six representative matrices of Table 4.
package gen

import (
	"fmt"
	"math/rand"

	"github.com/sss-lab/blocksptrsv/internal/sparse"
)

// lowerBuilder accumulates strictly-lower pattern entries per row and then
// assembles a solvable lower-triangular CSR matrix with generated values:
// strictly-lower entries are small and scaled down by the row's dependency
// count, the diagonal sits in [2,3), keeping the triangular solve
// well conditioned at any size.
type lowerBuilder struct {
	n    int
	deps [][]int32
	rng  *rand.Rand
}

func newLowerBuilder(n int, rng *rand.Rand) *lowerBuilder {
	return &lowerBuilder{n: n, deps: make([][]int32, n), rng: rng}
}

// addDep records the strictly-lower entry (i, j); duplicates are merged at
// assembly. It ignores out-of-range or non-lower coordinates so generators
// can be sloppy at boundaries.
func (lb *lowerBuilder) addDep(i, j int) {
	if j < 0 || i >= lb.n || j >= i {
		return
	}
	lb.deps[i] = append(lb.deps[i], int32(j))
}

func (lb *lowerBuilder) build() *sparse.CSR[float64] {
	rowPtr := make([]int, lb.n+1)
	nnz := lb.n // diagonal
	for i := range lb.deps {
		lb.deps[i] = dedupSorted(lb.deps[i])
		nnz += len(lb.deps[i])
	}
	colIdx := make([]int, 0, nnz)
	val := make([]float64, 0, nnz)
	for i := 0; i < lb.n; i++ {
		d := lb.deps[i]
		scale := 1.0 / float64(1+len(d))
		for _, j := range d {
			colIdx = append(colIdx, int(j))
			val = append(val, (lb.rng.Float64()-0.5)*scale)
		}
		colIdx = append(colIdx, i)
		val = append(val, 2+lb.rng.Float64())
		rowPtr[i+1] = len(val)
	}
	return &sparse.CSR[float64]{Rows: lb.n, Cols: lb.n, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
}

func dedupSorted(s []int32) []int32 {
	if len(s) < 2 {
		return s
	}
	// Insertion sort: dependency lists are short.
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// DiagonalOnly returns a purely diagonal system: one level, perfect
// parallelism — the completely-parallel case of Algorithm 7.
func DiagonalOnly(n int, seed int64) *sparse.CSR[float64] {
	return newLowerBuilder(n, rand.New(rand.NewSource(seed))).build()
}

// Banded returns a lower-banded system: each row depends on a random
// subset of the bw preceding components. Models FEM/stencil factors such as
// af_shell: few levels relative to n, uniform short rows.
func Banded(n, bw int, density float64, seed int64) *sparse.CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	lb := newLowerBuilder(n, rng)
	for i := 1; i < n; i++ {
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			if rng.Float64() < density {
				lb.addDep(i, j)
			}
		}
	}
	return lb.build()
}

// SerialChain returns an almost fully serial system: every component
// depends on its predecessor (n levels, parallelism 1), plus a sprinkle of
// extra earlier dependencies. This is the `tmt_sym` analogue — the
// worst case the paper uses to show block algorithms do not degrade
// "serial" problems.
func SerialChain(n int, extra float64, seed int64) *sparse.CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	lb := newLowerBuilder(n, rng)
	for i := 1; i < n; i++ {
		lb.addDep(i, i-1)
		if extra > 0 && rng.Float64() < extra {
			lb.addDep(i, rng.Intn(i))
		}
	}
	return lb.build()
}

// GridLaplacian5 returns the lower triangle of the 5-point Laplacian on an
// nx×ny grid in natural order: component (r,c) depends on (r-1,c) and
// (r,c-1). Levels are the grid antidiagonals — nx+ny-1 of them with
// parallelism up to min(nx,ny) — a structured PDE problem in the middle of
// the parallelism spectrum.
func GridLaplacian5(nx, ny int, seed int64) *sparse.CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	lb := newLowerBuilder(nx*ny, rng)
	for r := 0; r < ny; r++ {
		for c := 0; c < nx; c++ {
			i := r*nx + c
			if c > 0 {
				lb.addDep(i, i-1)
			}
			if r > 0 {
				lb.addDep(i, i-nx)
			}
		}
	}
	return lb.build()
}

// BipartiteBlock returns a two-level system: the first half is diagonal
// only, every second-half component depends on deg random first-half
// components. This is the `nlpkkt200` analogue — two massive levels,
// enormous parallelism — where blocking wins through cache locality.
func BipartiteBlock(n, deg int, seed int64) *sparse.CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	lb := newLowerBuilder(n, rng)
	half := n / 2
	for i := half; i < n; i++ {
		for d := 0; d < deg; d++ {
			lb.addDep(i, rng.Intn(half))
		}
	}
	return lb.build()
}

// PowerLaw returns a preferential-attachment system: each component
// attaches avgDeg dependencies to earlier components chosen proportionally
// to their current in-degree, so early components accumulate very long
// columns; additionally a hubFrac fraction of components are "hub rows"
// with ~32× the normal dependency count. This is the circuit-simulation
// (`FullChip`) analogue: power-law rows and columns, moderate level count —
// the load-imbalance case where 2D blocking shines (§2.2).
func PowerLaw(n, avgDeg int, hubFrac float64, seed int64) *sparse.CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	lb := newLowerBuilder(n, rng)
	// endpoints implements preferential attachment by repetition.
	endpoints := make([]int32, 0, 2*n*avgDeg)
	endpoints = append(endpoints, 0)
	for i := 1; i < n; i++ {
		deg := avgDeg
		if hubFrac > 0 && rng.Float64() < hubFrac {
			deg = avgDeg * 32
		}
		for d := 0; d < deg; d++ {
			var j int
			if rng.Float64() < 0.8 {
				j = int(endpoints[rng.Intn(len(endpoints))])
			} else {
				j = rng.Intn(i)
			}
			if j >= i {
				j = rng.Intn(i)
			}
			lb.addDep(i, j)
			endpoints = append(endpoints, int32(j))
		}
		endpoints = append(endpoints, int32(i))
	}
	return lb.build()
}

// RMAT returns the lower triangle of an R-MAT graph with 2^scale vertices
// and edgeFactor·2^scale edges (a=0.57, b=c=0.19), the standard model for
// skewed network/traffic graphs. Self-loops collapse into the diagonal.
// This is the `mawi` (network trace) analogue: extremely skewed degree
// distribution, few levels, huge but ragged parallelism.
func RMAT(scale, edgeFactor int, seed int64) *sparse.CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	lb := newLowerBuilder(n, rng)
	edges := n * edgeFactor
	const a, b, c = 0.57, 0.19, 0.19
	for e := 0; e < edges; e++ {
		u, v := 0, 0
		for bit := n >> 1; bit > 0; bit >>= 1 {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left: nothing to add
			case r < a+b:
				v += bit
			case r < a+b+c:
				u += bit
			default:
				u += bit
				v += bit
			}
		}
		if u == v {
			continue
		}
		if u < v {
			u, v = v, u
		}
		lb.addDep(u, v)
	}
	return lb.build()
}

// Layered returns a system with a controlled number of levels: components
// are assigned to nlevels contiguous layers; each non-root component gets
// one dependency in the previous layer (keeping levels tight) plus
// avgDeg-1 extra dependencies in arbitrary earlier layers. With skew > 0 a
// fraction of extra dependencies is redirected to a small hub set,
// producing long columns. Sweeping nlevels and avgDeg traces out the
// Figure-5 feature grid; mid-range settings give the `kkt_power` and
// `vas_stokes_4M` analogues.
func Layered(n, nlevels, avgDeg int, skew float64, seed int64) *sparse.CSR[float64] {
	if nlevels < 1 {
		nlevels = 1
	}
	if nlevels > n {
		nlevels = n
	}
	rng := rand.New(rand.NewSource(seed))
	lb := newLowerBuilder(n, rng)
	// layerStart[l] is the first component of layer l; layers are equal
	// sized with the remainder spread over the leading layers.
	layerStart := make([]int, nlevels+1)
	base, rem := n/nlevels, n%nlevels
	for l := 0; l < nlevels; l++ {
		sz := base
		if l < rem {
			sz++
		}
		layerStart[l+1] = layerStart[l] + sz
	}
	hubs := n / 64
	if hubs < 1 {
		hubs = 1
	}
	for l := 1; l < nlevels; l++ {
		for i := layerStart[l]; i < layerStart[l+1]; i++ {
			// Tight dependency in the previous layer.
			prevLo, prevHi := layerStart[l-1], layerStart[l]
			lb.addDep(i, prevLo+rng.Intn(prevHi-prevLo))
			for d := 1; d < avgDeg; d++ {
				var j int
				if skew > 0 && rng.Float64() < skew {
					// Hub deps must stay in strictly earlier layers or the
					// level count would drift above the target.
					h := hubs
					if h > layerStart[l] {
						h = layerStart[l]
					}
					j = rng.Intn(h)
				} else {
					j = rng.Intn(layerStart[l])
				}
				lb.addDep(i, j)
			}
		}
	}
	return lb.build()
}

// EmptyRowsRect returns a rows×cols rectangular matrix (not triangular)
// where approximately emptyRatio of the rows are empty and non-empty rows
// hold avgDeg entries. It drives the SpMV kernel-selection sweep
// (emptyratio axis of Figure 5b).
func EmptyRowsRect(rows, cols int, emptyRatio float64, avgDeg int, seed int64) *sparse.CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewBuilder[float64](rows, cols)
	for i := 0; i < rows; i++ {
		if rng.Float64() < emptyRatio {
			continue
		}
		for d := 0; d < avgDeg; d++ {
			b.Add(i, rng.Intn(cols), rng.NormFloat64())
		}
	}
	return b.BuildCSR()
}

// RandomRect returns a rows×cols rectangular matrix with the given fill
// density and optionally power-law row lengths (hubFrac of rows are 32×
// longer). Used by SpMV sweeps on the nnz/row axis.
func RandomRect(rows, cols int, avgDeg int, hubFrac float64, seed int64) *sparse.CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewBuilder[float64](rows, cols)
	for i := 0; i < rows; i++ {
		deg := avgDeg
		if hubFrac > 0 && rng.Float64() < hubFrac {
			deg = avgDeg * 32
		}
		for d := 0; d < deg; d++ {
			b.Add(i, rng.Intn(cols), rng.NormFloat64())
		}
	}
	return b.BuildCSR()
}

// DenseLower returns a fully dense lower-triangular matrix, used by the
// Table 1/2 traffic-count verification where the paper's closed forms
// assume dense blocks.
func DenseLower(n int, seed int64) *sparse.CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	lb := newLowerBuilder(n, rng)
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			lb.addDep(i, j)
		}
	}
	return lb.build()
}

// RandVec returns a deterministic pseudo-random right-hand side.
func RandVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// Describe summarises a matrix for logs: size, nnz, nnz/row.
func Describe(m *sparse.CSR[float64]) string {
	return fmt.Sprintf("n=%d nnz=%d nnz/row=%.2f", m.Rows, m.NNZ(), m.NNZPerRow())
}
