package gen

import (
	"errors"
	"math"
	"testing"

	"github.com/sss-lab/blocksptrsv/internal/levelset"
	"github.com/sss-lab/blocksptrsv/internal/sparse"
)

func mustSolvable(t *testing.T, m *sparse.CSR[float64]) {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := sparse.CheckLowerSolvable(m); err != nil {
		t.Fatal(err)
	}
}

func TestDiagonalOnly(t *testing.T) {
	m := DiagonalOnly(100, 1)
	mustSolvable(t, m)
	if m.NNZ() != 100 {
		t.Fatalf("nnz=%d want 100", m.NNZ())
	}
	if lv := levelset.FromLowerCSR(m); lv.NLevels != 1 {
		t.Fatalf("levels=%d want 1", lv.NLevels)
	}
}

func TestBanded(t *testing.T) {
	m := Banded(500, 16, 0.5, 2)
	mustSolvable(t, m)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if i-m.ColIdx[k] > 16 {
				t.Fatalf("entry (%d,%d) outside band", i, m.ColIdx[k])
			}
		}
	}
}

func TestSerialChainIsFullySerial(t *testing.T) {
	m := SerialChain(300, 0.4, 3)
	mustSolvable(t, m)
	lv := levelset.FromLowerCSR(m)
	if lv.NLevels != 300 {
		t.Fatalf("levels=%d want 300", lv.NLevels)
	}
	if st := lv.Stats(); st.MaxWidth != 1 {
		t.Fatalf("max width=%d want 1", st.MaxWidth)
	}
}

func TestGridLaplacian5Levels(t *testing.T) {
	nx, ny := 13, 9
	m := GridLaplacian5(nx, ny, 4)
	mustSolvable(t, m)
	lv := levelset.FromLowerCSR(m)
	if lv.NLevels != nx+ny-1 {
		t.Fatalf("levels=%d want %d", lv.NLevels, nx+ny-1)
	}
	if st := lv.Stats(); st.MaxWidth != 9 {
		t.Fatalf("max width=%d want min(nx,ny)=9", st.MaxWidth)
	}
}

func TestBipartiteBlockTwoLevels(t *testing.T) {
	m := BipartiteBlock(1000, 5, 5)
	mustSolvable(t, m)
	lv := levelset.FromLowerCSR(m)
	if lv.NLevels != 2 {
		t.Fatalf("levels=%d want 2", lv.NLevels)
	}
	if lv.LevelSize(0) != 500 || lv.LevelSize(1) != 500 {
		t.Fatalf("level sizes %d/%d want 500/500", lv.LevelSize(0), lv.LevelSize(1))
	}
}

func TestPowerLawIsSkewed(t *testing.T) {
	m := PowerLaw(3000, 4, 0.02, 6)
	mustSolvable(t, m)
	// Column-length skew: the longest column should dwarf the average.
	csc := m.ToCSC()
	maxCol, total := 0, 0
	for j := 0; j < csc.Cols; j++ {
		l := csc.ColLen(j)
		total += l
		if l > maxCol {
			maxCol = l
		}
	}
	avg := float64(total) / float64(csc.Cols)
	if float64(maxCol) < 10*avg {
		t.Fatalf("not skewed: max col %d vs avg %.1f", maxCol, avg)
	}
	// Hub rows: the longest row should dwarf the average row.
	maxRow := 0
	for i := 0; i < m.Rows; i++ {
		if l := m.RowLen(i); l > maxRow {
			maxRow = l
		}
	}
	if float64(maxRow) < 8*m.NNZPerRow() {
		t.Fatalf("no hub rows: max row %d vs avg %.1f", maxRow, m.NNZPerRow())
	}
}

func TestRMAT(t *testing.T) {
	m := RMAT(10, 4, 7)
	mustSolvable(t, m)
	if m.Rows != 1024 {
		t.Fatalf("rows=%d want 1024", m.Rows)
	}
	lv := levelset.FromLowerCSR(m)
	if lv.NLevels < 2 || lv.NLevels > 200 {
		t.Fatalf("rmat levels=%d, expected a few", lv.NLevels)
	}
}

func TestLayeredHitsTargetLevels(t *testing.T) {
	for _, target := range []int{1, 2, 7, 50, 333} {
		m := Layered(2000, target, 5, 0.2, int64(100+target))
		mustSolvable(t, m)
		lv := levelset.FromLowerCSR(m)
		if lv.NLevels != target {
			t.Fatalf("target %d: got %d levels", target, lv.NLevels)
		}
	}
	// Clamps: nlevels > n and < 1.
	if lv := levelset.FromLowerCSR(Layered(10, 99, 2, 0, 1)); lv.NLevels != 10 {
		t.Fatalf("clamped high: %d", lv.NLevels)
	}
	if lv := levelset.FromLowerCSR(Layered(10, 0, 2, 0, 1)); lv.NLevels != 1 {
		t.Fatalf("clamped low: %d", lv.NLevels)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := PowerLaw(500, 4, 0.05, 42)
	b := PowerLaw(500, 4, 0.05, 42)
	if a.NNZ() != b.NNZ() {
		t.Fatal("same seed produced different nnz")
	}
	for k := range a.Val {
		if a.Val[k] != b.Val[k] || a.ColIdx[k] != b.ColIdx[k] {
			t.Fatal("same seed produced different matrix")
		}
	}
	c := PowerLaw(500, 4, 0.05, 43)
	same := c.NNZ() == a.NNZ()
	if same {
		for k := range a.Val {
			if a.Val[k] != c.Val[k] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical matrix")
	}
}

func TestEmptyRowsRect(t *testing.T) {
	m := EmptyRowsRect(4000, 500, 0.7, 3, 8)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if r := m.EmptyRowRatio(); math.Abs(r-0.7) > 0.05 {
		t.Fatalf("empty ratio %.3f want ~0.7", r)
	}
}

func TestRandomRect(t *testing.T) {
	m := RandomRect(1000, 300, 4, 0.05, 9)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	maxRow := 0
	for i := 0; i < m.Rows; i++ {
		if l := m.RowLen(i); l > maxRow {
			maxRow = l
		}
	}
	if float64(maxRow) < 5*m.NNZPerRow() {
		t.Fatalf("hub rows missing: max %d avg %.1f", maxRow, m.NNZPerRow())
	}
}

func TestDenseLower(t *testing.T) {
	m := DenseLower(20, 10)
	mustSolvable(t, m)
	if m.NNZ() != 20*21/2 {
		t.Fatalf("nnz=%d want %d", m.NNZ(), 20*21/2)
	}
}

func TestILU0ExactOnDensePattern(t *testing.T) {
	// With a full pattern, ILU(0) is exact LU: L·U must reproduce A.
	a := SPDGridMatrix(3, 3) // small; pattern not dense, so densify
	dense := a.ToDense()
	n := a.Rows
	// Make it structurally dense but keep SPD dominance.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if dense[i*n+j] == 0 {
				dense[i*n+j] = 0.01 * float64(1+(i+j)%3)
			}
		}
	}
	full := sparse.FromDense(n, n, dense)
	l, u, err := ILU0(full)
	if err != nil {
		t.Fatal(err)
	}
	ld, ud := l.ToDense(), u.ToDense()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k < n; k++ {
				sum += ld[i*n+k] * ud[k*n+j]
			}
			if math.Abs(sum-dense[i*n+j]) > 1e-10 {
				t.Fatalf("LU(%d,%d)=%g want %g", i, j, sum, dense[i*n+j])
			}
		}
	}
}

func TestILU0FactorsAreTriangularAndSolvable(t *testing.T) {
	a := SPDGridMatrix(20, 17)
	l, u, err := ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	mustSolvable(t, l)
	if !u.IsUpperTriangular() {
		t.Fatal("U not upper triangular")
	}
	// L must be unit lower.
	for i := 0; i < l.Rows; i++ {
		if l.At(i, i) != 1 {
			t.Fatalf("L[%d][%d]=%g want 1", i, i, l.At(i, i))
		}
	}
	// On the pattern of A, (L·U) must match A exactly (ILU(0) property).
	n := a.Rows
	ld, ud := l.ToDense(), u.ToDense()
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			var sum float64
			for kk := 0; kk < n; kk++ {
				sum += ld[i*n+kk] * ud[kk*n+j]
			}
			if math.Abs(sum-a.Val[k]) > 1e-10 {
				t.Fatalf("(LU)(%d,%d)=%g want %g", i, j, sum, a.Val[k])
			}
		}
	}
}

func TestILU0Errors(t *testing.T) {
	// Non-square.
	rect := sparse.FromDense(2, 3, []float64{1, 0, 0, 0, 1, 0})
	if _, _, err := ILU0(rect); err == nil {
		t.Fatal("accepted non-square")
	}
	// Missing diagonal.
	b := sparse.NewBuilder[float64](2, 2)
	b.Add(0, 0, 1)
	b.Add(1, 0, 1)
	if _, _, err := ILU0(b.BuildCSR()); !errors.Is(err, sparse.ErrSingular) {
		t.Fatal("accepted missing diagonal")
	}
	// Zero pivot: the diagonal entry must be present in the pattern but
	// hold the value zero (FromDense would drop it, so use the Builder).
	zb := sparse.NewBuilder[float64](2, 2)
	zb.Add(0, 0, 0)
	zb.Add(0, 1, 1)
	zb.Add(1, 0, 1)
	zb.Add(1, 1, 1)
	if _, _, err := ILU0(zb.BuildCSR()); !errors.Is(err, ErrZeroPivot) {
		t.Fatalf("zero pivot: got %v", err)
	}
}

func TestSPDGridMatrix(t *testing.T) {
	a := SPDGridMatrix(5, 4)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	d := a.ToDense()
	n := a.Rows
	for i := 0; i < n; i++ {
		if d[i*n+i] != 4 {
			t.Fatalf("diag %d = %g", i, d[i*n+i])
		}
		for j := 0; j < n; j++ {
			if d[i*n+j] != d[j*n+i] {
				t.Fatalf("not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestCorpusEntriesBuildAndSolvable(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build is slow in -short mode")
	}
	seen := map[string]bool{}
	for _, e := range Corpus(0.02) {
		if seen[e.Name] {
			t.Fatalf("duplicate corpus name %q", e.Name)
		}
		seen[e.Name] = true
		if e.Group == "" {
			t.Fatalf("%s: empty group", e.Name)
		}
		m := e.Build()
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if err := sparse.CheckLowerSolvable(m); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
	}
	if len(seen) < 20 {
		t.Fatalf("corpus too small: %d entries", len(seen))
	}
}

func TestRepresentative6Features(t *testing.T) {
	if testing.Short() {
		t.Skip("representative build is slow in -short mode")
	}
	entries := Representative6(0.05)
	if len(entries) != 6 {
		t.Fatalf("want 6 entries, got %d", len(entries))
	}
	lv := func(i int) *levelset.Info {
		return levelset.FromLowerCSR(entries[i].Build())
	}
	if got := lv(0).NLevels; got != 2 {
		t.Errorf("nlpkkt-like levels=%d want 2", got)
	}
	if got := lv(2).NLevels; got != 17 {
		t.Errorf("kkt_power-like levels=%d want 17", got)
	}
	if got := lv(5); got.NLevels != got.N {
		t.Errorf("tmt_sym-like levels=%d want n=%d", got.NLevels, got.N)
	}
	if got := lv(4); got.NLevels != got.N/30 {
		t.Errorf("vas_stokes-like levels=%d want n/30=%d", got.NLevels, got.N/30)
	}
}
