package gen

import (
	"errors"
	"fmt"

	"github.com/sss-lab/blocksptrsv/internal/sparse"
)

// ErrZeroPivot reports an ILU(0) breakdown.
var ErrZeroPivot = errors.New("gen: zero pivot in ILU(0)")

// ILU0 computes the incomplete LU factorisation with zero fill-in of a
// square CSR matrix whose pattern includes the full diagonal. It returns a
// unit-lower-triangular L (unit diagonal stored explicitly) and an upper
// triangular U, both on sub-patterns of A, with A ≈ L·U. The triangular
// factors are the realistic SpTRSV workloads of the paper's motivating
// scenario — preconditioned iterative solvers (§1).
func ILU0(a *sparse.CSR[float64]) (l, u *sparse.CSR[float64], err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("%w: %dx%d not square", sparse.ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	val := append([]float64(nil), a.Val...)
	// diagAt[i] is the index of A[i][i] in the value array.
	diagAt := make([]int, n)
	for i := 0; i < n; i++ {
		diagAt[i] = -1
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] == i {
				diagAt[i] = k
				break
			}
		}
		if diagAt[i] < 0 {
			return nil, nil, fmt.Errorf("%w: row %d has no diagonal entry", sparse.ErrSingular, i)
		}
	}
	// pos scatters the current row's columns to value indices.
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i := 0; i < n; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			pos[a.ColIdx[k]] = k
		}
		for k := lo; k < hi; k++ {
			kk := a.ColIdx[k]
			if kk >= i {
				break
			}
			piv := val[diagAt[kk]]
			if piv == 0 {
				return nil, nil, fmt.Errorf("%w: column %d", ErrZeroPivot, kk)
			}
			lik := val[k] / piv
			val[k] = lik
			for kj := diagAt[kk] + 1; kj < a.RowPtr[kk+1]; kj++ {
				j := a.ColIdx[kj]
				if p := pos[j]; p >= 0 {
					val[p] -= lik * val[kj]
				}
			}
		}
		for k := lo; k < hi; k++ {
			pos[a.ColIdx[k]] = -1
		}
		if val[diagAt[i]] == 0 {
			return nil, nil, fmt.Errorf("%w: row %d", ErrZeroPivot, i)
		}
	}
	// Split the factored values into L (strictly lower + unit diagonal)
	// and U (diagonal and above).
	lPtr := make([]int, n+1)
	uPtr := make([]int, n+1)
	var lIdx, uIdx []int
	var lVal, uVal []float64
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j < i {
				lIdx = append(lIdx, j)
				lVal = append(lVal, val[k])
			} else {
				uIdx = append(uIdx, j)
				uVal = append(uVal, val[k])
			}
		}
		lIdx = append(lIdx, i)
		lVal = append(lVal, 1)
		lPtr[i+1] = len(lVal)
		uPtr[i+1] = len(uVal)
	}
	l = &sparse.CSR[float64]{Rows: n, Cols: n, RowPtr: lPtr, ColIdx: lIdx, Val: lVal}
	u = &sparse.CSR[float64]{Rows: n, Cols: n, RowPtr: uPtr, ColIdx: uIdx, Val: uVal}
	return l, u, nil
}

// SPDGridMatrix returns the full (symmetric positive definite) 5-point
// Laplacian on an nx×ny grid: diagonal 4, neighbours -1. It is the model
// problem for the preconditioned-CG example.
func SPDGridMatrix(nx, ny int) *sparse.CSR[float64] {
	n := nx * ny
	b := sparse.NewBuilder[float64](n, n)
	for r := 0; r < ny; r++ {
		for c := 0; c < nx; c++ {
			i := r*nx + c
			b.Add(i, i, 4)
			if c > 0 {
				b.Add(i, i-1, -1)
			}
			if c < nx-1 {
				b.Add(i, i+1, -1)
			}
			if r > 0 {
				b.Add(i, i-nx, -1)
			}
			if r < ny-1 {
				b.Add(i, i+nx, -1)
			}
		}
	}
	return b.BuildCSR()
}
