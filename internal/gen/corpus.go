package gen

import (
	"fmt"
	"math"

	"github.com/sss-lab/blocksptrsv/internal/sparse"
)

// Entry is one corpus matrix: a named, lazily-built, deterministic
// lower-triangular system standing in for one SuiteSparse matrix.
type Entry struct {
	// Name identifies the matrix; Table-4 analogues carry the original
	// matrix's name with a "-like" suffix.
	Name string
	// Group is the structural class (paper §4.1 draws from e.g.
	// optimisation, circuit simulation, network analysis, PDE problems).
	Group string
	// Build constructs the matrix. Deterministic: same Entry, same bits.
	Build func() *sparse.CSR[float64]
}

func scaled(n int, scale float64) int {
	s := int(float64(n) * scale)
	if s < 16 {
		s = 16
	}
	return s
}

// Representative6 returns analogues of the six representative matrices of
// Table 4, ordered as in the paper. The structural features tracked are
// the ones the paper reports: level count and per-level parallelism.
//
//	nlpkkt200         → 2 levels, massive parallelism (optimisation KKT)
//	mawi_201512020030 → few levels, skewed network graph
//	kkt_power         → ~17 levels, good parallelism, mild skew
//	FullChip          → a few hundred levels, power-law rows/columns
//	vas_stokes_4M     → thousands of levels, limited parallelism, hubs
//	tmt_sym           → ~n levels, parallelism 1 (near serial)
func Representative6(scale float64) []Entry {
	return []Entry{
		{
			Name: "nlpkkt-like", Group: "optimization",
			Build: func() *sparse.CSR[float64] { return BipartiteBlock(scaled(120_000, scale), 12, 1001) },
		},
		{
			Name: "mawi-like", Group: "network",
			Build: func() *sparse.CSR[float64] {
				s := 17 + int(math.Round(math.Log2(math.Max(scale, 1.0/64))))
				return RMAT(s, 2, 1002)
			},
		},
		{
			Name: "kkt_power-like", Group: "optimization",
			Build: func() *sparse.CSR[float64] { return Layered(scaled(80_000, scale), 17, 4, 0.25, 1003) },
		},
		{
			Name: "fullchip-like", Group: "circuit",
			Build: func() *sparse.CSR[float64] { return PowerLaw(scaled(60_000, scale), 4, 0.02, 1004) },
		},
		{
			Name: "vas_stokes-like", Group: "semiconductor",
			Build: func() *sparse.CSR[float64] {
				// Levels scale with n so the per-level parallelism stays in
				// the "limited but present" regime of the original matrix.
				n := scaled(60_000, scale)
				return Layered(n, n/30, 20, 0.4, 1005)
			},
		},
		{
			Name: "tmt_sym-like", Group: "electromagnetics",
			Build: func() *sparse.CSR[float64] { return SerialChain(scaled(90_000, scale), 0.3, 1006) },
		},
	}
}

// Corpus returns the full synthetic benchmark suite standing in for the
// paper's 159-matrix dataset: every structural class at several sizes,
// degrees and seeds, plus the six representative analogues and ILU(0)
// factors of PDE problems. scale multiplies all matrix dimensions
// (scale=1 targets a laptop-scale run; the paper's sizes correspond to
// scale≈10–50).
func Corpus(scale float64) []Entry {
	var out []Entry
	add := func(name, group string, build func() *sparse.CSR[float64]) {
		out = append(out, Entry{Name: name, Group: group, Build: build})
	}

	// Diagonal and banded FEM-like factors.
	add("diag-200k", "synthetic", func() *sparse.CSR[float64] { return DiagonalOnly(scaled(200_000, scale), 2001) })
	for i, bw := range []int{8, 32, 128, 512} {
		bw := bw
		seed := int64(2100 + i)
		add(fmt.Sprintf("banded-bw%d", bw), "fem", func() *sparse.CSR[float64] {
			return Banded(scaled(120_000, scale), bw, 0.25, seed)
		})
	}
	add("banded-dense-bw64", "fem", func() *sparse.CSR[float64] {
		return Banded(scaled(60_000, scale), 64, 0.9, 2150)
	})

	// Grid Laplacian lower factors (structured PDE), square and elongated.
	for i, side := range []int{256, 400} {
		side := int(float64(side) * math.Sqrt(scale))
		if side < 8 {
			side = 8
		}
		seed := int64(2200 + i)
		add(fmt.Sprintf("grid5-%dx%d", side, side), "pde", func() *sparse.CSR[float64] {
			return GridLaplacian5(side, side, seed)
		})
	}
	add("grid5-elongated", "pde", func() *sparse.CSR[float64] {
		long := int(2000 * math.Sqrt(scale))
		short := int(50 * math.Sqrt(scale))
		if long < 32 {
			long = 32
		}
		if short < 4 {
			short = 4
		}
		return GridLaplacian5(long, short, 2250)
	})

	// Bipartite / KKT optimisation problems: 2 levels, huge parallelism.
	for i, deg := range []int{6, 16, 32} {
		deg := deg
		seed := int64(2300 + i)
		add(fmt.Sprintf("bipartite-d%d", deg), "optimization", func() *sparse.CSR[float64] {
			return BipartiteBlock(scaled(150_000, scale), deg, seed)
		})
	}

	// Layered systems sweeping the level-count axis.
	for i, lv := range []int{8, 64, 512, 4096, 16384} {
		lv := lv
		seed := int64(2400 + i)
		add(fmt.Sprintf("layered-L%d", lv), "layered", func() *sparse.CSR[float64] {
			return Layered(scaled(100_000, scale), lv, 6, 0, seed)
		})
	}
	// Layered with hub skew (long columns).
	for i, skew := range []float64{0.2, 0.5} {
		skew := skew
		seed := int64(2500 + i)
		add(fmt.Sprintf("layered-skew%.0f%%", skew*100), "layered", func() *sparse.CSR[float64] {
			return Layered(scaled(80_000, scale), 64, 8, skew, seed)
		})
	}

	// Power-law circuit-like systems.
	for i, hub := range []float64{0, 0.01, 0.05} {
		hub := hub
		seed := int64(2600 + i)
		add(fmt.Sprintf("powerlaw-hub%.0f%%", hub*100), "circuit", func() *sparse.CSR[float64] {
			return PowerLaw(scaled(80_000, scale), 4, hub, seed)
		})
	}
	add("powerlaw-dense", "circuit", func() *sparse.CSR[float64] {
		return PowerLaw(scaled(40_000, scale), 12, 0.02, 2650)
	})

	// RMAT network graphs.
	for i, ef := range []int{2, 8} {
		ef := ef
		s := 16 + int(math.Round(math.Log2(math.Max(scale, 1.0/64))))
		seed := int64(2700 + i)
		add(fmt.Sprintf("rmat-ef%d", ef), "network", func() *sparse.CSR[float64] {
			return RMAT(s, ef, seed)
		})
	}

	// Near-serial chains.
	for i, extra := range []float64{0, 0.5, 1.0} {
		extra := extra
		seed := int64(2800 + i)
		add(fmt.Sprintf("chain-extra%.0f%%", extra*100), "serial", func() *sparse.CSR[float64] {
			return SerialChain(scaled(60_000, scale), extra, seed)
		})
	}

	// ILU(0) factors of the SPD grid Laplacian: the realistic
	// preconditioner workload of the paper's iterative scenario.
	add("ilu0-grid-L", "ilu", func() *sparse.CSR[float64] {
		side := int(250 * math.Sqrt(scale))
		if side < 8 {
			side = 8
		}
		l, _, err := ILU0(SPDGridMatrix(side, side))
		if err != nil {
			panic(err) // the Laplacian cannot break down
		}
		return l
	})
	// The U factor solved as a lower system via the mirror identity
	// (J·U·J), the workload of the back-substitution half of ILU.
	add("ilu0-grid-U-mirror", "ilu", func() *sparse.CSR[float64] {
		side := int(250 * math.Sqrt(scale))
		if side < 8 {
			side = 8
		}
		_, u, err := ILU0(SPDGridMatrix(side, side))
		if err != nil {
			panic(err)
		}
		n := u.Rows
		rev := make([]int, n)
		for i := range rev {
			rev[i] = n - 1 - i
		}
		m, err := sparse.PermuteSym(u, rev)
		if err != nil {
			panic(err)
		}
		return m
	})

	out = append(out, Representative6(scale)...)
	return out
}
