// Package adapt implements the paper's adaptive kernel selection (§3.4):
// per-sub-matrix feature extraction, the Algorithm-7 decision tree with the
// published thresholds, and the empirical tuner that regenerates the
// Figure-5 "best kernel" heatmaps from measured performance data.
package adapt

import (
	"time"

	"github.com/sss-lab/blocksptrsv/internal/kernels"
	"github.com/sss-lab/blocksptrsv/internal/levelset"
	"github.com/sss-lab/blocksptrsv/internal/sparse"
)

// TriFeatures are the selection features of a triangular sub-matrix:
// average strictly-lower entries per row ("nnz/row"; the separately-stored
// diagonal is excluded, so a pure chain scores 1 and a diagonal block 0)
// and the number of level sets.
type TriFeatures struct {
	Rows      int
	StrictNNZ int
	NNZPerRow float64
	NLevels   int
}

// TriFeaturesOf extracts the features from a split triangular block.
func TriFeaturesOf[T sparse.Float](strict *sparse.CSC[T], info *levelset.Info) TriFeatures {
	f := TriFeatures{Rows: strict.Rows, StrictNNZ: strict.NNZ(), NLevels: info.NLevels}
	if f.Rows > 0 {
		f.NNZPerRow = float64(f.StrictNNZ) / float64(f.Rows)
	}
	return f
}

// SpMVFeatures are the selection features of a square/rectangular
// sub-matrix: average entries per row (counting empty rows in the
// denominator) and the fraction of empty rows.
type SpMVFeatures struct {
	Rows       int
	NNZ        int
	NNZPerRow  float64
	EmptyRatio float64
}

// SpMVFeaturesOf extracts the features from a CSR block.
func SpMVFeaturesOf[T sparse.Float](a *sparse.CSR[T]) SpMVFeatures {
	return SpMVFeatures{
		Rows:       a.Rows,
		NNZ:        a.NNZ(),
		NNZPerRow:  a.NNZPerRow(),
		EmptyRatio: a.EmptyRowRatio(),
	}
}

// Thresholds hold the decision-tree cut points. The defaults are the
// values the paper reads off its 373,814-sample tuning run (Figure 5,
// Algorithm 7); Retune derives machine-specific values.
type Thresholds struct {
	// SpTRSV side (Figure 5a).
	TriLevelSetMaxNNZRow float64 // level-set wins below this nnz/row ...
	TriLevelSetMaxLevels int     // ... when nlevels is also below this
	TriChainMaxNNZRow    float64 // the nnz/row≈1 chain band ...
	TriChainMaxLevels    int     // ... extends to this many levels
	TriCuSparseMinLevels int     // cuSPARSE-like above this level count
	// SpMV side (Figure 5b).
	SpMVScalarMaxNNZRow float64 // scalar kernels at or below, vector above
	SpMVScalarDCSRMin   float64 // scalar: DCSR above this empty ratio
	SpMVVectorDCSRMin   float64 // vector: DCSR above this empty ratio

	// LaunchCost is the measured per-launch latency of the launcher the
	// fit ran on (zero when unmeasured, as in the paper defaults). The
	// cut points above implicitly encode a launch cost — the whole
	// level-merging business exists to amortise it — so recording the
	// measured value alongside them lets consumers (per-block
	// calibration, the bench harness) price launch-bound schedules in
	// absolute terms instead of assuming the GPU's.
	LaunchCost time.Duration
}

// DefaultThresholds returns the paper's published cut points.
func DefaultThresholds() Thresholds {
	return Thresholds{
		TriLevelSetMaxNNZRow: 15,
		TriLevelSetMaxLevels: 20,
		TriChainMaxNNZRow:    1,
		TriChainMaxLevels:    100,
		TriCuSparseMinLevels: 20000,
		SpMVScalarMaxNNZRow:  12,
		SpMVScalarDCSRMin:    0.50,
		SpMVVectorDCSRMin:    0.15,
	}
}

// SelectTri is the SpTRSV half of Algorithm 7's decision tree.
func (t Thresholds) SelectTri(f TriFeatures) kernels.TriKernel {
	switch {
	case f.NLevels <= 1:
		return kernels.TriCompletelyParallel
	case f.NLevels > t.TriCuSparseMinLevels:
		return kernels.TriCuSparseLike
	case f.NNZPerRow <= t.TriChainMaxNNZRow && f.NLevels <= t.TriChainMaxLevels,
		f.NNZPerRow <= t.TriLevelSetMaxNNZRow && f.NLevels <= t.TriLevelSetMaxLevels:
		return kernels.TriLevelSet
	default:
		return kernels.TriSyncFree
	}
}

// SelectSpMV is the SpMV half of Algorithm 7's decision tree.
func (t Thresholds) SelectSpMV(f SpMVFeatures) kernels.SpMVKernel {
	if f.NNZPerRow <= t.SpMVScalarMaxNNZRow {
		if f.EmptyRatio <= t.SpMVScalarDCSRMin {
			return kernels.SpMVScalarCSR
		}
		return kernels.SpMVScalarDCSR
	}
	if f.EmptyRatio <= t.SpMVVectorDCSRMin {
		return kernels.SpMVVectorCSR
	}
	return kernels.SpMVVectorDCSR
}
