package adapt

import (
	"time"

	"github.com/sss-lab/blocksptrsv/internal/exec"
	"github.com/sss-lab/blocksptrsv/internal/gen"
	"github.com/sss-lab/blocksptrsv/internal/kernels"
	"github.com/sss-lab/blocksptrsv/internal/levelset"
	"github.com/sss-lab/blocksptrsv/internal/sparse"
)

// TriCell is one cell of the Figure-5a sweep: a generated triangular block
// with the given features and the measured GFlops of every applicable
// SpTRSV kernel.
type TriCell struct {
	Features TriFeatures
	GFlops   map[kernels.TriKernel]float64
	Best     kernels.TriKernel
}

// SpMVCell is one cell of the Figure-5b sweep.
type SpMVCell struct {
	Features SpMVFeatures
	GFlops   map[kernels.SpMVKernel]float64
	Best     kernels.SpMVKernel
}

// bestTime runs fn `repeats` times and returns the fastest wall time; the
// minimum is the standard estimator for kernels this short.
func bestTime(repeats int, fn func()) time.Duration {
	if repeats < 1 {
		repeats = 1
	}
	best := time.Duration(1<<62 - 1)
	for r := 0; r < repeats; r++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

func gflops(flops int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(flops) / d.Seconds() / 1e9
}

// TuneTri measures all SpTRSV kernels over a (nnz/row × nlevels) grid of
// generated triangular blocks, regenerating the data behind Figure 5(a).
// rows is the block size; repeats picks the best-of-N timing.
func TuneTri(p exec.Launcher, rows int, nnzRowAxis []int, levelsAxis []int, repeats int, seed int64) []TriCell {
	var cells []TriCell
	for ci, deg := range nnzRowAxis {
		for cj, nlev := range levelsAxis {
			m := gen.Layered(rows, nlev, deg+1, 0, seed+int64(ci*1000+cj))
			strict, diag, err := sparse.SplitDiagCSC(m.ToCSC())
			if err != nil {
				panic("adapt: generated block not solvable: " + err.Error())
			}
			info := levelset.FromLowerCSR(m)
			cell := TriCell{
				Features: TriFeaturesOf(strict, info),
				GFlops:   make(map[kernels.TriKernel]float64),
			}
			flops := 2 * m.NNZ()
			n := m.Rows
			w := make([]float64, n)
			x := make([]float64, n)
			b := gen.RandVec(n, seed)

			if info.NLevels <= 1 {
				d := bestTime(repeats, func() {
					copy(w, b)
					kernels.TriDiagOnlySolve(p, diag, w, x)
				})
				cell.GFlops[kernels.TriCompletelyParallel] = gflops(flops, d)
			} else {
				d := bestTime(repeats, func() {
					copy(w, b)
					kernels.TriLevelSetSolve(p, strict, diag, info, w, x)
				})
				cell.GFlops[kernels.TriLevelSet] = gflops(flops, d)

				state := kernels.NewSyncFreeState(strict)
				d = bestTime(repeats, func() {
					copy(w, b)
					kernels.TriSyncFreeSolve(p, state, strict, diag, w, x)
				})
				cell.GFlops[kernels.TriSyncFree] = gflops(flops, d)

				strictCSR := strict.ToCSR()
				sched := kernels.NewMergedSchedule(info, 0, p.Workers())
				d = bestTime(repeats, func() {
					copy(w, b)
					kernels.TriCuSparseLikeSolve(p, sched, strictCSR, diag, w, x)
				})
				cell.GFlops[kernels.TriCuSparseLike] = gflops(flops, d)
			}
			cell.Best = argmaxTri(cell.GFlops)
			cells = append(cells, cell)
		}
	}
	return cells
}

// TuneSpMV measures all SpMV kernels over a (nnz/row × emptyratio) grid of
// generated square blocks, regenerating the data behind Figure 5(b).
func TuneSpMV(p exec.Launcher, rows int, nnzRowAxis []int, emptyAxis []float64, repeats int, seed int64) []SpMVCell {
	var cells []SpMVCell
	for ci, deg := range nnzRowAxis {
		for cj, empty := range emptyAxis {
			// Raise per-row degree so the average over all rows (including
			// empty ones) stays near the axis value.
			rowDeg := deg
			if empty < 1 {
				rowDeg = int(float64(deg)/(1-empty) + 0.5)
			}
			if rowDeg < 1 {
				rowDeg = 1
			}
			a := gen.EmptyRowsRect(rows, rows, empty, rowDeg, seed+int64(ci*1000+cj))
			d := a.ToDCSR()
			cell := SpMVCell{
				Features: SpMVFeaturesOf(a),
				GFlops:   make(map[kernels.SpMVKernel]float64),
			}
			flops := 2 * a.NNZ()
			x := gen.RandVec(rows, seed)
			w := make([]float64, rows)

			for _, k := range []kernels.SpMVKernel{
				kernels.SpMVScalarCSR, kernels.SpMVVectorCSR,
				kernels.SpMVScalarDCSR, kernels.SpMVVectorDCSR,
			} {
				k := k
				dur := bestTime(repeats, func() {
					for i := range w {
						w[i] = 0
					}
					kernels.RunSpMV(p, k, a, d, x, w)
				})
				cell.GFlops[k] = gflops(flops, dur)
			}
			cell.Best = argmaxSpMV(cell.GFlops)
			cells = append(cells, cell)
		}
	}
	return cells
}

func argmaxTri(m map[kernels.TriKernel]float64) kernels.TriKernel {
	best, bestV := kernels.TriAuto, -1.0
	for k, v := range m {
		if v > bestV || (v == bestV && k < best) {
			best, bestV = k, v
		}
	}
	return best
}

func argmaxSpMV(m map[kernels.SpMVKernel]float64) kernels.SpMVKernel {
	best, bestV := kernels.SpMVAuto, -1.0
	for k, v := range m {
		if v > bestV || (v == bestV && k < best) {
			best, bestV = k, v
		}
	}
	return best
}

// QuickFit runs a reduced Figure-5 sweep sized for interactive use and
// returns thresholds fitted to this machine. rows is the sub-block size to
// tune at (the paper tunes at many; one mid-size block captures the
// crossovers well enough for selection).
func QuickFit(p exec.Launcher, rows, repeats int, seed int64) Thresholds {
	if rows < 512 {
		rows = 512
	}
	tri := TuneTri(p, rows,
		[]int{1, 2, 4, 8, 16, 32},
		[]int{2, 8, 32, 128, 512, 2048, 8192},
		repeats, seed)
	spmv := TuneSpMV(p, rows,
		[]int{1, 2, 4, 8, 16, 32, 64},
		[]float64{0, 0.1, 0.25, 0.5, 0.75, 0.9},
		repeats, seed+1)
	th := FitThresholds(tri, spmv)
	th.LaunchCost = exec.MeasureLaunchCost(p, 64)
	return th
}

// FitThresholds derives machine-specific decision-tree cut points from
// tuned grids, falling back to the paper's defaults wherever the data is
// inconclusive. This mirrors how the paper picks its thresholds from the
// measured heatmaps: simple axis-aligned cuts, deliberately not optimal per
// cell ("not all cells in the selected areas have exactly the same color").
func FitThresholds(tri []TriCell, spmv []SpMVCell) Thresholds {
	th := DefaultThresholds()

	// SpMV scalar/vector boundary: the smallest nnz/row at which, among
	// low-empty cells, a vector kernel wins the majority.
	if len(spmv) > 0 {
		type bucket struct{ vectorWins, total int }
		byDeg := map[int]*bucket{}
		degs := []int{}
		for _, c := range spmv {
			if c.Features.EmptyRatio > 0.3 {
				continue
			}
			d := int(c.Features.NNZPerRow + 0.5)
			b, ok := byDeg[d]
			if !ok {
				b = &bucket{}
				byDeg[d] = b
				degs = append(degs, d)
			}
			if c.Best == kernels.SpMVVectorCSR || c.Best == kernels.SpMVVectorDCSR {
				b.vectorWins++
			}
			b.total++
		}
		insertionSortInts(degs)
		for _, d := range degs {
			b := byDeg[d]
			if b.total > 0 && b.vectorWins*2 > b.total {
				th.SpMVScalarMaxNNZRow = float64(d) - 0.5
				break
			}
		}
	}

	// Tri sync-free/cuSPARSE-like boundary: the smallest nlevels from
	// which the cuSPARSE-like kernel wins every deeper bucket's majority.
	// On GPUs this sits at ~20000 levels; on a goroutine substrate the
	// merged-serial schedule starts paying off much earlier, so fitting it
	// matters for the near-serial matrices.
	if len(tri) > 0 {
		type bucket struct{ cuWins, total int }
		byLev := map[int]*bucket{}
		levs := []int{}
		for _, c := range tri {
			if c.Features.NLevels <= 1 {
				continue
			}
			l := c.Features.NLevels
			b, ok := byLev[l]
			if !ok {
				b = &bucket{}
				byLev[l] = b
				levs = append(levs, l)
			}
			if c.Best == kernels.TriCuSparseLike {
				b.cuWins++
			}
			b.total++
		}
		insertionSortInts(levs)
		// Find the deepest suffix of the level axis where cuSPARSE-like
		// holds the majority in every bucket.
		cut := -1
		for i := len(levs) - 1; i >= 0; i-- {
			b := byLev[levs[i]]
			if b.cuWins*2 > b.total {
				cut = levs[i]
			} else {
				break
			}
		}
		if cut > 1 {
			th.TriCuSparseMinLevels = cut - 1
		}
		// Chain band: among nnz/row≈1 cells below the cuSPARSE cut, the
		// deepest level count where level-set still wins.
		chain := 0
		for _, c := range tri {
			if c.Features.NNZPerRow <= 1.2 && c.Best == kernels.TriLevelSet && c.Features.NLevels > chain {
				chain = c.Features.NLevels
			}
		}
		if chain > 0 {
			th.TriChainMaxLevels = chain
		}
	}

	// Tri level-set/sync-free boundary: the largest nlevels at which
	// level-set still wins a majority of low-degree cells.
	if len(tri) > 0 {
		type bucket struct{ lsWins, total int }
		byLev := map[int]*bucket{}
		levs := []int{}
		for _, c := range tri {
			if c.Features.NNZPerRow > 15 || c.Features.NLevels <= 1 {
				continue
			}
			l := c.Features.NLevels
			b, ok := byLev[l]
			if !ok {
				b = &bucket{}
				byLev[l] = b
				levs = append(levs, l)
			}
			if c.Best == kernels.TriLevelSet {
				b.lsWins++
			}
			b.total++
		}
		insertionSortInts(levs)
		cut := 0
		for _, l := range levs {
			b := byLev[l]
			if b.total > 0 && b.lsWins*2 > b.total {
				cut = l
			} else if cut > 0 {
				break
			}
		}
		if cut > 0 {
			th.TriLevelSetMaxLevels = cut
		}
	}
	return th
}

func insertionSortInts(s []int) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
