package adapt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/sss-lab/blocksptrsv/internal/exec"
	"github.com/sss-lab/blocksptrsv/internal/gen"
	"github.com/sss-lab/blocksptrsv/internal/kernels"
	"github.com/sss-lab/blocksptrsv/internal/levelset"
	"github.com/sss-lab/blocksptrsv/internal/sparse"
)

func TestSelectTriPaperCases(t *testing.T) {
	th := DefaultThresholds()
	cases := []struct {
		name string
		f    TriFeatures
		want kernels.TriKernel
	}{
		{"diagonal block", TriFeatures{Rows: 100, NLevels: 1}, kernels.TriCompletelyParallel},
		{"empty block", TriFeatures{}, kernels.TriCompletelyParallel},
		{"shallow short rows", TriFeatures{Rows: 100, NNZPerRow: 10, NLevels: 15}, kernels.TriLevelSet},
		{"chain band", TriFeatures{Rows: 100, NNZPerRow: 1, NLevels: 90}, kernels.TriLevelSet},
		{"chain too deep", TriFeatures{Rows: 100, NNZPerRow: 1, NLevels: 101}, kernels.TriSyncFree},
		{"shallow long rows", TriFeatures{Rows: 100, NNZPerRow: 40, NLevels: 10}, kernels.TriSyncFree},
		{"mid depth", TriFeatures{Rows: 100, NNZPerRow: 10, NLevels: 500}, kernels.TriSyncFree},
		{"very deep", TriFeatures{Rows: 100, NNZPerRow: 3, NLevels: 20001}, kernels.TriCuSparseLike},
		{"boundary nnz=15 lev=20", TriFeatures{Rows: 100, NNZPerRow: 15, NLevels: 20}, kernels.TriLevelSet},
		{"boundary lev=20000", TriFeatures{Rows: 100, NNZPerRow: 3, NLevels: 20000}, kernels.TriSyncFree},
	}
	for _, tc := range cases {
		if got := th.SelectTri(tc.f); got != tc.want {
			t.Errorf("%s: got %v want %v", tc.name, got, tc.want)
		}
	}
}

func TestSelectSpMVPaperCases(t *testing.T) {
	th := DefaultThresholds()
	cases := []struct {
		name string
		f    SpMVFeatures
		want kernels.SpMVKernel
	}{
		{"short rows dense-ish", SpMVFeatures{NNZPerRow: 5, EmptyRatio: 0.2}, kernels.SpMVScalarCSR},
		{"short rows mostly empty", SpMVFeatures{NNZPerRow: 5, EmptyRatio: 0.8}, kernels.SpMVScalarDCSR},
		{"long rows few empty", SpMVFeatures{NNZPerRow: 30, EmptyRatio: 0.05}, kernels.SpMVVectorCSR},
		{"long rows many empty", SpMVFeatures{NNZPerRow: 30, EmptyRatio: 0.4}, kernels.SpMVVectorDCSR},
		{"boundary nnz=12", SpMVFeatures{NNZPerRow: 12, EmptyRatio: 0.5}, kernels.SpMVScalarCSR},
		{"boundary empty=15%", SpMVFeatures{NNZPerRow: 13, EmptyRatio: 0.15}, kernels.SpMVVectorCSR},
	}
	for _, tc := range cases {
		if got := th.SelectSpMV(tc.f); got != tc.want {
			t.Errorf("%s: got %v want %v", tc.name, got, tc.want)
		}
	}
}

// TestSelectorsTotal: the decision trees must return a concrete runnable
// kernel (never Auto/Serial) for any feature combination.
func TestSelectorsTotal(t *testing.T) {
	th := DefaultThresholds()
	f := func(rows uint16, nnzPerRow float64, nlevels uint16, empty float64) bool {
		if nnzPerRow < 0 {
			nnzPerRow = -nnzPerRow
		}
		empty = empty - float64(int(empty)) // fold into [0,1)
		if empty < 0 {
			empty += 1
		}
		tk := th.SelectTri(TriFeatures{Rows: int(rows), NNZPerRow: nnzPerRow, NLevels: int(nlevels)})
		switch tk {
		case kernels.TriCompletelyParallel, kernels.TriLevelSet, kernels.TriSyncFree, kernels.TriCuSparseLike:
		default:
			return false
		}
		sk := th.SelectSpMV(SpMVFeatures{Rows: int(rows), NNZPerRow: nnzPerRow, EmptyRatio: empty})
		switch sk {
		case kernels.SpMVScalarCSR, kernels.SpMVVectorCSR, kernels.SpMVScalarDCSR, kernels.SpMVVectorDCSR:
		default:
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(70))}); err != nil {
		t.Fatal(err)
	}
}

func TestTriFeaturesOf(t *testing.T) {
	m := gen.SerialChain(50, 0, 1)
	strict, _, err := sparse.SplitDiagCSC(m.ToCSC())
	if err != nil {
		t.Fatal(err)
	}
	f := TriFeaturesOf(strict, levelset.FromLowerCSR(m))
	if f.Rows != 50 || f.NLevels != 50 || f.StrictNNZ != 49 {
		t.Fatalf("features: %+v", f)
	}
	if f.NNZPerRow != 49.0/50.0 {
		t.Fatalf("nnz/row: %g", f.NNZPerRow)
	}
}

func TestSpMVFeaturesOf(t *testing.T) {
	a := gen.EmptyRowsRect(1000, 100, 0.5, 4, 2)
	f := SpMVFeaturesOf(a)
	if f.Rows != 1000 || f.NNZ != a.NNZ() {
		t.Fatalf("features: %+v", f)
	}
	if f.EmptyRatio < 0.4 || f.EmptyRatio > 0.6 {
		t.Fatalf("empty ratio: %g", f.EmptyRatio)
	}
}

func TestTuneTriProducesCompleteGrid(t *testing.T) {
	p := exec.NewPool(4)
	cells := TuneTri(p, 2000, []int{1, 8}, []int{1, 4, 64}, 2, 80)
	if len(cells) != 6 {
		t.Fatalf("cells: got %d want 6", len(cells))
	}
	for _, c := range cells {
		if len(c.GFlops) == 0 {
			t.Fatalf("cell %+v has no measurements", c.Features)
		}
		if c.Best == kernels.TriAuto {
			t.Fatalf("cell %+v has no best kernel", c.Features)
		}
		if c.Features.NLevels <= 1 && c.Best != kernels.TriCompletelyParallel {
			t.Fatalf("diagonal cell picked %v", c.Best)
		}
		for k, v := range c.GFlops {
			if v <= 0 {
				t.Fatalf("cell %+v kernel %v has non-positive GFlops", c.Features, k)
			}
		}
	}
}

func TestTuneSpMVProducesCompleteGrid(t *testing.T) {
	p := exec.NewPool(4)
	cells := TuneSpMV(p, 2000, []int{2, 16}, []float64{0, 0.6}, 2, 81)
	if len(cells) != 4 {
		t.Fatalf("cells: got %d want 4", len(cells))
	}
	for _, c := range cells {
		if len(c.GFlops) != 4 {
			t.Fatalf("cell %+v measured %d kernels, want 4", c.Features, len(c.GFlops))
		}
		if c.Best == kernels.SpMVAuto {
			t.Fatal("no best kernel picked")
		}
	}
}

func TestFitThresholdsFallsBackOnEmptyData(t *testing.T) {
	th := FitThresholds(nil, nil)
	if th != DefaultThresholds() {
		t.Fatalf("empty data should keep defaults: %+v", th)
	}
}

func TestFitThresholdsUsesData(t *testing.T) {
	// Synthetic SpMV grid where vector kernels win from nnz/row >= 8.
	var spmv []SpMVCell
	for _, d := range []int{2, 4, 8, 16} {
		best := kernels.SpMVScalarCSR
		if d >= 8 {
			best = kernels.SpMVVectorCSR
		}
		spmv = append(spmv, SpMVCell{
			Features: SpMVFeatures{NNZPerRow: float64(d), EmptyRatio: 0.1},
			Best:     best,
		})
	}
	// Synthetic tri grid where level-set wins up to 40 levels.
	var tri []TriCell
	for _, l := range []int{5, 20, 40, 160} {
		best := kernels.TriLevelSet
		if l > 40 {
			best = kernels.TriSyncFree
		}
		tri = append(tri, TriCell{
			Features: TriFeatures{NNZPerRow: 4, NLevels: l},
			Best:     best,
		})
	}
	th := FitThresholds(tri, spmv)
	if th.SpMVScalarMaxNNZRow != 7.5 {
		t.Errorf("SpMVScalarMaxNNZRow: got %g want 7.5", th.SpMVScalarMaxNNZRow)
	}
	if th.TriLevelSetMaxLevels != 40 {
		t.Errorf("TriLevelSetMaxLevels: got %d want 40", th.TriLevelSetMaxLevels)
	}
}
