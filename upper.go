package blocksptrsv

import (
	"context"
	"fmt"
	"io"

	"github.com/sss-lab/blocksptrsv/internal/adapt"
	"github.com/sss-lab/blocksptrsv/internal/block"
	"github.com/sss-lab/blocksptrsv/internal/exec"
	"github.com/sss-lab/blocksptrsv/internal/kernels"
	"github.com/sss-lab/blocksptrsv/internal/sparse"
)

// UpperSolver solves the upper-triangular system U·x = b with the block
// algorithm, via the mirror identity: with J the index-reversal
// permutation, J·U·J is lower triangular, so U·x = b becomes
// (J·U·J)·(J·x) = J·b. Analyze the mirrored matrix once, then each solve
// costs two vector reversals on top of a lower solve.
//
// Together with Solver this completes the L·U solve pipeline of
// ILU-preconditioned iterative methods: z = U⁻¹(L⁻¹ r).
type UpperSolver[T Float] struct {
	inner  *Solver[T]
	n      int
	br, xr []T
}

// AnalyzeUpper preprocesses the upper-triangular system U for repeated
// solves. U must be square, upper triangular, with a full nonzero diagonal.
func AnalyzeUpper[T Float](u *Matrix[T], opts Options) (*UpperSolver[T], error) {
	if u.Rows != u.Cols {
		return nil, fmt.Errorf("blocksptrsv: AnalyzeUpper: %dx%d not square", u.Rows, u.Cols)
	}
	if opts.Validate {
		// Validate in the original orientation so defect coordinates
		// (row, column) refer to the caller's matrix, not the mirror.
		if err := sparse.ValidateUpper(u); err != nil {
			return nil, err
		}
	}
	if !u.IsUpperTriangular() {
		return nil, sparse.ErrNotTriangular
	}
	n := u.Rows
	rev := make([]int, n)
	for i := range rev {
		rev[i] = n - 1 - i
	}
	mirrored, err := sparse.PermuteSym(u, rev)
	if err != nil {
		return nil, err
	}
	inner, err := Analyze(mirrored, opts)
	if err != nil {
		return nil, err
	}
	return &UpperSolver[T]{inner: inner, n: n, br: make([]T, n), xr: make([]T, n)}, nil
}

// Rows reports the system size.
func (s *UpperSolver[T]) Rows() int { return s.n }

// Name identifies the solver configuration for reports.
func (s *UpperSolver[T]) Name() string { return s.inner.Name() + "-upper" }

// Solve computes x with U·x = b. Not safe for concurrent use.
func (s *UpperSolver[T]) Solve(b, x []T) {
	n := s.n
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("blocksptrsv: UpperSolver.Solve got len(b)=%d len(x)=%d want %d", len(b), len(x), n))
	}
	for i := 0; i < n; i++ {
		s.br[i] = b[n-1-i]
	}
	s.inner.Solve(s.br, s.xr)
	for i := 0; i < n; i++ {
		x[i] = s.xr[n-1-i]
	}
}

// SolveContext is the guarded counterpart of Solve: cancellation, the
// stall watchdog and residual verification apply exactly as on
// Solver.SolveContext (on the mirrored lower system — residuals are
// invariant under the mirror permutation). Length mismatches return an
// error instead of panicking.
func (s *UpperSolver[T]) SolveContext(ctx context.Context, b, x []T) error {
	n := s.n
	if len(b) != n || len(x) != n {
		return fmt.Errorf("blocksptrsv: UpperSolver.SolveContext got len(b)=%d len(x)=%d want %d", len(b), len(x), n)
	}
	for i := 0; i < n; i++ {
		s.br[i] = b[n-1-i]
	}
	if err := s.inner.SolveContext(ctx, s.br, s.xr); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		x[i] = s.xr[n-1-i]
	}
	return nil
}

// Stats returns the inner solver's instrumentation counters, including
// the SolveContext recovery counts (Refinements, Fallbacks).
func (s *UpperSolver[T]) Stats() SolveStats { return s.inner.Stats() }

// MatVec computes y = m·x in parallel on a default-size pool. It is the
// general sparse matrix-vector product used by the iterative-solver
// examples; x and y must not alias.
func MatVec[T Float](m *Matrix[T], x, y []T) {
	kernels.Multiply(matVecPool, m, x, y)
}

var matVecPool = exec.NewSpinPool(0)

// LoadSolver reloads a Solver previously serialised with Solver.WriteTo,
// binding it to a pool of the given size (<=0 = GOMAXPROCS). The stored
// analysis — permutation, blocks, kernel choices — is reused verbatim, so
// the preprocessing cost is paid once across program runs.
func LoadSolver[T Float](r io.Reader, workers int) (*Solver[T], error) {
	return block.ReadSolver[T](r, exec.NewSpinPool(workers))
}

// TuneThresholds runs a reduced kernel-selection sweep (Figure 5 of the
// paper) on this machine and returns fitted decision-tree thresholds to
// plug into Options.Thresholds. blockRows is the sub-block size to tune
// at; <=0 picks 20000. The sweep takes a few seconds.
func TuneThresholds(workers, blockRows int) Thresholds {
	if blockRows <= 0 {
		blockRows = 20000
	}
	pool := exec.NewSpinPool(workers)
	defer pool.Close()
	return adapt.QuickFit(pool, blockRows, 3, 7001)
}
