package blocksptrsv_test

import (
	"math"
	"testing"

	sptrsv "github.com/sss-lab/blocksptrsv"
)

func TestLUSolver(t *testing.T) {
	a := sptrsv.GridSPD(40, 40)
	l, u, err := sptrsv.ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sptrsv.NewLUSolver(l, u, sptrsv.DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows() != a.Rows || s.Name() != "block-lu" {
		t.Fatal("metadata")
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	x := make([]float64, a.Rows)
	s.Solve(b, x)
	// ILU(0) on the full pattern is not exact LU, but L·U·x must equal b:
	// verify y = U·x solves L·y = b and U·x = y chains correctly by
	// computing L·(U·x) directly.
	ux := make([]float64, a.Rows)
	sptrsv.MatVec(u, x, ux)
	if r := sptrsv.Residual(l, ux, b); r > 1e-9 {
		t.Fatalf("LU solve residual %g", r)
	}
}

func TestNewLUSolverRejectsBadFactors(t *testing.T) {
	a := sptrsv.GridSPD(5, 5)
	l, u, err := sptrsv.ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sptrsv.NewLUSolver(u, u, sptrsv.DefaultOptions(1)); err == nil {
		t.Fatal("accepted upper factor as L")
	}
	if _, err := sptrsv.NewLUSolver(l, l, sptrsv.DefaultOptions(1)); err == nil {
		t.Fatal("accepted lower factor as U")
	}
}

func TestSparseRHSPublicAPI(t *testing.T) {
	l := buildRandomLower(500, 0.03, 9)
	s, err := sptrsv.AnalyzeSparseRHS(l)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows() != 500 {
		t.Fatal("Rows")
	}
	xIdx, xVal := s.Solve([]int{7, 123}, []float64{1, -2})
	// Verify against a dense solve through the block solver.
	dense, err := sptrsv.Analyze(l, sptrsv.DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 500)
	b[7] = 1
	b[123] = -2
	want := make([]float64, 500)
	dense.Solve(b, want)
	got := make([]float64, 500)
	for i, idx := range xIdx {
		got[idx] = xVal[i]
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d]=%g want %g", i, got[i], want[i])
		}
	}
	if len(xIdx) >= 500 {
		t.Fatalf("reach not sparse: %d of 500", len(xIdx))
	}
}

func TestResidualPublic(t *testing.T) {
	m := sptrsv.FromDense(2, 2, []float64{2, 0, 1, 1})
	if r := sptrsv.Residual(m, []float64{1, 2}, []float64{2, 3}); r != 0 {
		t.Fatalf("exact solution residual %g", r)
	}
	if r := sptrsv.Residual(m, []float64{1, 2}, []float64{2, 4}); r <= 0 {
		t.Fatal("wrong solution should have positive residual")
	}
}
