# Development targets. `make ci` is the gate every change must pass: vet
# (including a gofmt cleanliness check), full build, full test suite, the
# race detector on the packages that exercise the lock-free machinery or
# hammer shared metrics, the tagged fault-injection chaos suite, the perf
# regression gate, the project static analyzers (cmd/sptrsvlint), and a
# short fuzzing pass over the input parsers.

GO ?= go

.PHONY: ci vet build test race chaos cover bench-launch bench-json perfgate lint bcecheck inlcheck escapecheck lint-update fuzz-short daemon-smoke cachecheck startup

ci: vet build test race chaos daemon-smoke perfgate lint bcecheck inlcheck escapecheck fuzz-short cachecheck

vet:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race . ./internal/exec ./internal/kernels ./internal/block \
		./internal/core ./internal/metrics ./internal/bench ./internal/daemon \
		./internal/plancache ./internal/reqtrace

# Project-specific static analyzers (DESIGN.md §6.8): hot-path allocation
# discipline, atomic-field access, spin-loop guards, wall-clock placement,
# and dropped errors. The repo must stay finding-free.
lint:
	$(GO) run ./cmd/sptrsvlint ./...

# BCE invariant (DESIGN.md §6.9): recompile the hot packages with the
# compiler's bounds-check debug pass and fail if any //sptrsv:hotpath
# function carries more surviving checks than internal/lint/bce_allow.txt
# permits. After a reviewed kernel-shape change, refresh the allowlist
# with `go run ./cmd/sptrsvlint -bce -bce-update`.
bcecheck:
	$(GO) run ./cmd/sptrsvlint -bce

# Compiler-witness gates (DESIGN.md §6.13). inlcheck recompiles the hot
# packages with -gcflags=-m=2 and fails if any //sptrsv:hotpath function
# stopped inlining without a reviewed internal/lint/inl_allow.txt entry
# carrying the compiler's reason verbatim. escapecheck reads the same
# audit and fails on hot-path heap escapes beyond the sanctioned
# per-launch publication costs.
inlcheck:
	$(GO) run ./cmd/sptrsvlint -inl

escapecheck:
	$(GO) run ./cmd/sptrsvlint -escape

# Regenerate both compiler-witness allowlists from the current tree, then
# fail if they changed — a dirty result means an unreviewed drift between
# the committed allowlists and what the compiler actually does. Commit
# the regenerated files after reviewing the diff.
lint-update:
	$(GO) run ./cmd/sptrsvlint -bce -bce-update
	$(GO) run ./cmd/sptrsvlint -inl -inl-update
	git diff --exit-code internal/lint/bce_allow.txt internal/lint/inl_allow.txt

# Short deterministic-budget fuzzing pass over the two input parsers (the
# Matrix Market reader and the lint harness's want/ignore comment parsers)
# plus the differential kernel-equivalence fuzzer, which solves random
# triangular systems with every optimized kernel against the serial
# reference at both element types. Corpus finds land in testdata/fuzz and
# should be committed.
FUZZTIME ?= 10s

fuzz-short:
	$(GO) test -run - -fuzz FuzzReadMatrixMarket -fuzztime $(FUZZTIME) ./internal/sparse
	$(GO) test -run - -fuzz FuzzParseWant -fuzztime $(FUZZTIME) ./internal/lint
	$(GO) test -run - -fuzz FuzzKernelEquivalence -fuzztime $(FUZZTIME) ./internal/kernels
	$(GO) test -run - -fuzz FuzzPlanRoundTrip -fuzztime $(FUZZTIME) ./internal/block

# Fault-injection chaos suite: hooks compiled in under the faultinject tag
# drive panics, in-degree corruption, solution poisoning and worker delays
# through the guarded solve path.
chaos:
	$(GO) test -tags faultinject ./internal/faultinject ./internal/block ./internal/kernels \
		./internal/daemon

# Coverage gate for the solver core and the execution substrate. Floors
# sit ~10 points below the measured coverage so refactors have headroom
# while untested new subsystems still fail the gate.
COVER_FLOOR_BLOCK     ?= 80
COVER_FLOOR_EXEC      ?= 60
COVER_FLOOR_PLANCACHE ?= 80
COVER_FLOOR_REQTRACE  ?= 85
COVER_FLOOR_LINT      ?= 75

cover:
	$(GO) test -coverprofile=/tmp/blocksptrsv-cover-block.out ./internal/block
	$(GO) test -coverprofile=/tmp/blocksptrsv-cover-exec.out ./internal/exec
	$(GO) test -coverprofile=/tmp/blocksptrsv-cover-plancache.out ./internal/plancache
	$(GO) test -coverprofile=/tmp/blocksptrsv-cover-reqtrace.out ./internal/reqtrace
	$(GO) test -coverprofile=/tmp/blocksptrsv-cover-lint.out ./internal/lint
	@$(GO) tool cover -func=/tmp/blocksptrsv-cover-block.out | awk '$$1=="total:" \
		{ pct=$$3; sub(/%/,"",pct); printf "internal/block coverage: %s (floor $(COVER_FLOOR_BLOCK)%%)\n", $$3; \
		  if (pct+0 < $(COVER_FLOOR_BLOCK)) exit 1 }'
	@$(GO) tool cover -func=/tmp/blocksptrsv-cover-exec.out | awk '$$1=="total:" \
		{ pct=$$3; sub(/%/,"",pct); printf "internal/exec coverage: %s (floor $(COVER_FLOOR_EXEC)%%)\n", $$3; \
		  if (pct+0 < $(COVER_FLOOR_EXEC)) exit 1 }'
	@$(GO) tool cover -func=/tmp/blocksptrsv-cover-plancache.out | awk '$$1=="total:" \
		{ pct=$$3; sub(/%/,"",pct); printf "internal/plancache coverage: %s (floor $(COVER_FLOOR_PLANCACHE)%%)\n", $$3; \
		  if (pct+0 < $(COVER_FLOOR_PLANCACHE)) exit 1 }'
	@$(GO) tool cover -func=/tmp/blocksptrsv-cover-reqtrace.out | awk '$$1=="total:" \
		{ pct=$$3; sub(/%/,"",pct); printf "internal/reqtrace coverage: %s (floor $(COVER_FLOOR_REQTRACE)%%)\n", $$3; \
		  if (pct+0 < $(COVER_FLOOR_REQTRACE)) exit 1 }'
	@$(GO) tool cover -func=/tmp/blocksptrsv-cover-lint.out | awk '$$1=="total:" \
		{ pct=$$3; sub(/%/,"",pct); printf "internal/lint coverage: %s (floor $(COVER_FLOOR_LINT)%%)\n", $$3; \
		  if (pct+0 < $(COVER_FLOOR_LINT)) exit 1 }'

# Machine-readable perf trajectory (DESIGN.md §6.7). bench-json runs the
# full canonical suite and refreshes the committed baseline; run it on a
# quiet machine after a deliberate perf change and commit the result.
# perfgate replays the short suite (one matrix per structural-class pair)
# against that baseline with a deliberately generous gate: it exists to
# catch order-of-magnitude mistakes deterministically in CI, not to
# referee single-digit noise. Both pin -scale so medians stay comparable.
BENCH_SCALE    ?= 0.1
BENCH_BASELINE ?= BENCH_baseline.json
PERFGATE_PCT   ?= 400

bench-json:
	@base_sha=$$(sed -n 's/.*"git_sha": *"\([0-9a-f]*\)".*/\1/p' $(BENCH_BASELINE) 2>/dev/null | head -1); \
	head_sha=$$(git rev-parse --short=12 HEAD 2>/dev/null); \
	if [ -n "$$base_sha" ] && [ -n "$$head_sha" ] && [ "$$base_sha" != "$$head_sha" ]; then \
		echo "bench-json: baseline was recorded at $$base_sha, HEAD is $$head_sha — this run refreshes it"; fi
	$(GO) run ./cmd/sptrsvbench -suite -scale $(BENCH_SCALE) -repeats 9 -warmup 2 \
		-json $(BENCH_BASELINE)

perfgate: startup
	$(GO) run ./cmd/sptrsvbench -suite -short -scale $(BENCH_SCALE) -repeats 3 -warmup 1 \
		-baseline $(BENCH_BASELINE) -gate $(PERFGATE_PCT) -json /tmp/blocksptrsv-perfgate.json

# Cold vs warm startup (DESIGN.md §6.11): cold Preprocess analysis vs a
# warm plan-cache load over the short suite corpus. Informational — the
# per-matrix warm-speedup target (5x) is reported, not enforced, because
# the ratio is machine- and scale-dependent; pass
# `-min-warm-speedup <x>` via cmd/sptrsvbench to make it a hard gate.
startup:
	$(GO) run ./cmd/sptrsvbench -startup -short -scale $(BENCH_SCALE) -repeats 3

# Corpus regeneration check: the committed pregenerated suite matrices
# under internal/bench/testdata/corpus must be byte-identical to what the
# fixed-seed generators produce. Guards both directions: a generator
# change without `matgen -emit-binary`, and a corpus edit by hand.
cachecheck:
	@tmp=$$(mktemp -d /tmp/blocksptrsv-cachecheck-XXXXXX); \
	trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/matgen -emit-binary -dir "$$tmp" >/dev/null && \
	diff -r internal/bench/testdata/corpus "$$tmp" && \
	echo "cachecheck: corpus regeneration is byte-identical"

# Daemon smoke (part of `make ci`): an in-process one-worker sptrsvd
# under a 2s concurrent burst must coalesce requests into multi-RHS
# batches (factor > 1) and answer every request without an error
# response, then drain cleanly. DESIGN.md §6.10.
daemon-smoke:
	$(GO) run ./cmd/sptrsvd -smoke

# Launch-latency microbenchmarks: the three launcher styles head to head.
bench-launch:
	$(GO) test -run - -bench 'LaunchOverhead|LevelSetLauncherStyles' \
		./internal/exec ./internal/kernels
