# Development targets. `make ci` is the gate every change must pass: vet,
# full build, full test suite, and the race detector on the three packages
# that exercise the lock-free machinery (spin-barrier pool, sync-free
# kernels, block solver).

GO ?= go

.PHONY: ci vet build test race bench-launch

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/exec ./internal/kernels ./internal/block

# Launch-latency microbenchmarks: the three launcher styles head to head.
bench-launch:
	$(GO) test -run - -bench 'LaunchOverhead|LevelSetLauncherStyles' \
		./internal/exec ./internal/kernels
