# Development targets. `make ci` is the gate every change must pass: vet,
# full build, full test suite, the race detector on the four packages that
# exercise the lock-free machinery (spin-barrier pool, sync-free kernels,
# block solver, registry), and the tagged fault-injection chaos suite.

GO ?= go

.PHONY: ci vet build test race chaos bench-launch

ci: vet build test race chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/exec ./internal/kernels ./internal/block ./internal/core

# Fault-injection chaos suite: hooks compiled in under the faultinject tag
# drive panics, in-degree corruption, solution poisoning and worker delays
# through the guarded solve path.
chaos:
	$(GO) test -tags faultinject ./internal/faultinject ./internal/block ./internal/kernels

# Launch-latency microbenchmarks: the three launcher styles head to head.
bench-launch:
	$(GO) test -run - -bench 'LaunchOverhead|LevelSetLauncherStyles' \
		./internal/exec ./internal/kernels
