# Development targets. `make ci` is the gate every change must pass: vet,
# full build, full test suite, the race detector on the four packages that
# exercise the lock-free machinery (spin-barrier pool, sync-free kernels,
# block solver, registry), and the tagged fault-injection chaos suite.

GO ?= go

.PHONY: ci vet build test race chaos cover bench-launch bench-json perfgate

ci: vet build test race chaos perfgate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/exec ./internal/kernels ./internal/block ./internal/core

# Fault-injection chaos suite: hooks compiled in under the faultinject tag
# drive panics, in-degree corruption, solution poisoning and worker delays
# through the guarded solve path.
chaos:
	$(GO) test -tags faultinject ./internal/faultinject ./internal/block ./internal/kernels

# Coverage gate for the solver core and the execution substrate. Floors
# sit ~10 points below the measured coverage so refactors have headroom
# while untested new subsystems still fail the gate.
COVER_FLOOR_BLOCK ?= 80
COVER_FLOOR_EXEC  ?= 60

cover:
	$(GO) test -coverprofile=/tmp/blocksptrsv-cover-block.out ./internal/block
	$(GO) test -coverprofile=/tmp/blocksptrsv-cover-exec.out ./internal/exec
	@$(GO) tool cover -func=/tmp/blocksptrsv-cover-block.out | awk '$$1=="total:" \
		{ pct=$$3; sub(/%/,"",pct); printf "internal/block coverage: %s (floor $(COVER_FLOOR_BLOCK)%%)\n", $$3; \
		  if (pct+0 < $(COVER_FLOOR_BLOCK)) exit 1 }'
	@$(GO) tool cover -func=/tmp/blocksptrsv-cover-exec.out | awk '$$1=="total:" \
		{ pct=$$3; sub(/%/,"",pct); printf "internal/exec coverage: %s (floor $(COVER_FLOOR_EXEC)%%)\n", $$3; \
		  if (pct+0 < $(COVER_FLOOR_EXEC)) exit 1 }'

# Machine-readable perf trajectory (DESIGN.md §6.7). bench-json runs the
# full canonical suite and refreshes the committed baseline; run it on a
# quiet machine after a deliberate perf change and commit the result.
# perfgate replays the short suite (one matrix per structural-class pair)
# against that baseline with a deliberately generous gate: it exists to
# catch order-of-magnitude mistakes deterministically in CI, not to
# referee single-digit noise. Both pin -scale so medians stay comparable.
BENCH_SCALE    ?= 0.1
BENCH_BASELINE ?= BENCH_baseline.json
PERFGATE_PCT   ?= 400

bench-json:
	$(GO) run ./cmd/sptrsvbench -suite -scale $(BENCH_SCALE) -repeats 9 -warmup 2 \
		-json $(BENCH_BASELINE)

perfgate:
	$(GO) run ./cmd/sptrsvbench -suite -short -scale $(BENCH_SCALE) -repeats 3 -warmup 1 \
		-baseline $(BENCH_BASELINE) -gate $(PERFGATE_PCT) -json /tmp/blocksptrsv-perfgate.json

# Launch-latency microbenchmarks: the three launcher styles head to head.
bench-launch:
	$(GO) test -run - -bench 'LaunchOverhead|LevelSetLauncherStyles' \
		./internal/exec ./internal/kernels
