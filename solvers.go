package blocksptrsv

import (
	"math"

	"github.com/sss-lab/blocksptrsv/internal/kernels"
)

// LUSolver solves A·x ≈ b given triangular factors A ≈ L·U (for example
// from ILU0 or an external factorisation) with two block triangular
// solves: x = U⁻¹·(L⁻¹·b). It is the complete solve phase of a sparse
// direct or preconditioned iterative method.
type LUSolver struct {
	l *Solver[float64]
	u *UpperSolver[float64]
	y []float64
}

// NewLUSolver preprocesses both factors. L must be lower and U upper
// triangular, both with nonzero diagonals (ILU0 output qualifies).
func NewLUSolver(l, u *Matrix[float64], opts Options) (*LUSolver, error) {
	ls, err := Analyze(l, opts)
	if err != nil {
		return nil, err
	}
	us, err := AnalyzeUpper(u, opts)
	if err != nil {
		return nil, err
	}
	return &LUSolver{l: ls, u: us, y: make([]float64, l.Rows)}, nil
}

// Rows reports the system size.
func (s *LUSolver) Rows() int { return len(s.y) }

// Name identifies the solver for reports.
func (s *LUSolver) Name() string { return "block-lu" }

// Solve computes x with L·U·x = b. Not safe for concurrent use.
func (s *LUSolver) Solve(b, x []float64) {
	s.l.Solve(b, s.y)
	s.u.Solve(s.y, x)
}

// SparseRHSSolver solves L·x = b for sparse right-hand sides using the
// Gilbert–Peierls reach technique: only the components reachable from b's
// nonzeros are touched, so solve cost is proportional to the size of the
// (often tiny) reach rather than to n. This is the classic optimisation of
// the solve phase of sparse direct solvers.
type SparseRHSSolver[T Float] = kernels.SparseRHSSolver[T]

// AnalyzeSparseRHS builds a sparse-right-hand-side solver for L.
func AnalyzeSparseRHS[T Float](l *Matrix[T]) (*SparseRHSSolver[T], error) {
	return kernels.NewSparseRHSSolver(l)
}

// Residual returns the scaled infinity-norm residual
// max_i |(M·x − b)_i| / (1 + |b_i|) — the acceptance check used across
// this library's examples and tools.
func Residual[T Float](m *Matrix[T], x, b []T) float64 {
	worst := 0.0
	for i := 0; i < m.Rows; i++ {
		var sum T
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Val[k] * x[m.ColIdx[k]]
		}
		bi := float64(b[i])
		if r := math.Abs(float64(sum)-bi) / (1 + math.Abs(bi)); r > worst {
			worst = r
		}
	}
	return worst
}
