package blocksptrsv

import (
	"context"
	"fmt"

	"github.com/sss-lab/blocksptrsv/internal/kernels"
	"github.com/sss-lab/blocksptrsv/internal/sparse"
)

// LUSolver solves A·x ≈ b given triangular factors A ≈ L·U (for example
// from ILU0 or an external factorisation) with two block triangular
// solves: x = U⁻¹·(L⁻¹·b). It is the complete solve phase of a sparse
// direct or preconditioned iterative method.
type LUSolver struct {
	l *Solver[float64]
	u *UpperSolver[float64]
	y []float64
}

// NewLUSolver preprocesses both factors. L must be lower and U upper
// triangular, both with nonzero diagonals (ILU0 output qualifies).
func NewLUSolver(l, u *Matrix[float64], opts Options) (*LUSolver, error) {
	ls, err := Analyze(l, opts)
	if err != nil {
		return nil, err
	}
	us, err := AnalyzeUpper(u, opts)
	if err != nil {
		return nil, err
	}
	return &LUSolver{l: ls, u: us, y: make([]float64, l.Rows)}, nil
}

// Rows reports the system size.
func (s *LUSolver) Rows() int { return len(s.y) }

// Name identifies the solver for reports.
func (s *LUSolver) Name() string { return "block-lu" }

// Solve computes x with L·U·x = b. Not safe for concurrent use.
func (s *LUSolver) Solve(b, x []float64) {
	if len(b) != len(s.y) || len(x) != len(s.y) {
		panic(fmt.Sprintf("blocksptrsv: LUSolver.Solve got len(b)=%d len(x)=%d want %d", len(b), len(x), len(s.y)))
	}
	s.l.Solve(b, s.y)
	s.u.Solve(s.y, x)
}

// SolveContext is the guarded counterpart of Solve: both triangular
// solves run with cancellation, the stall watchdog and residual
// verification as configured in the Options passed to NewLUSolver.
// Length mismatches return an error instead of panicking.
func (s *LUSolver) SolveContext(ctx context.Context, b, x []float64) error {
	if len(b) != len(s.y) || len(x) != len(s.y) {
		return fmt.Errorf("blocksptrsv: LUSolver.SolveContext got len(b)=%d len(x)=%d want %d", len(b), len(x), len(s.y))
	}
	if err := s.l.SolveContext(ctx, b, s.y); err != nil {
		return err
	}
	return s.u.SolveContext(ctx, s.y, x)
}

// SparseRHSSolver solves L·x = b for sparse right-hand sides using the
// Gilbert–Peierls reach technique: only the components reachable from b's
// nonzeros are touched, so solve cost is proportional to the size of the
// (often tiny) reach rather than to n. This is the classic optimisation of
// the solve phase of sparse direct solvers.
type SparseRHSSolver[T Float] = kernels.SparseRHSSolver[T]

// AnalyzeSparseRHS builds a sparse-right-hand-side solver for L.
func AnalyzeSparseRHS[T Float](l *Matrix[T]) (*SparseRHSSolver[T], error) {
	return kernels.NewSparseRHSSolver(l)
}

// Residual returns the scaled infinity-norm residual
// max_i |(M·x − b)_i| / (1 + |b_i|) — the acceptance check used across
// this library's examples, tools and the guarded solve path
// (Options.VerifyResidual).
func Residual[T Float](m *Matrix[T], x, b []T) float64 {
	return sparse.ScaledResidual(m, x, b)
}
