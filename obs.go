package blocksptrsv

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"

	"github.com/sss-lab/blocksptrsv/internal/metrics"
)

// External observability: the in-process layer (tracing, explain, the
// metrics registry — DESIGN.md §6.6) exposed over HTTP so a running
// solver can be inspected live by standard tooling. ObsHandler is an
// embeddable mux — mount it on any server, or let `sptrsv -serve` host
// it. Serving is entirely out-of-band: every endpoint reads atomics or
// snapshots a ring under a short lock, and a solver that is not traced
// pays nothing at all (pinned by TestObsHandlerZeroAllocSolve).

// WritePrometheus writes the process-wide metrics registry in Prometheus
// text exposition format: every counter as a `_total` counter, every
// latency histogram as a classic histogram in seconds plus p50/p90/p99
// quantile gauges extracted from its log₂ buckets.
func WritePrometheus(w io.Writer) error { return metrics.WritePrometheus(w) }

// ObsOptions configure the optional, solver-specific endpoints of an
// ObsHandler. The zero value is valid: the process-wide endpoints
// (/metrics, /debug/vars, /debug/pprof) always work; /explain and /trace
// answer 404 until a source is configured.
type ObsOptions struct {
	// Explain, when non-nil, serves its result at /explain — typically a
	// solver or session's Explain method value.
	Explain func() string
	// Trace, when non-nil, serves the recorder's retained steps at
	// /trace. Attach the same recorder to the solver with SetTrace (or
	// Options.Trace) to see live solves.
	Trace *TraceRecorder
	// Index lists extra endpoints the host serves around this handler
	// (e.g. daemon.IndexLines()), advertised on the index page so
	// `curl /` still enumerates the whole surface when the ObsHandler is
	// mounted as a fallback mux. Lines whose first /-rooted path token
	// repeats a built-in endpoint or an earlier Index line are dropped,
	// so every endpoint appears exactly once however the host assembles
	// the list.
	Index []string
}

// indexPath extracts the first /-rooted token of an index line — the key
// the index page's duplicate suppression works on.
func indexPath(line string) string {
	for _, f := range strings.Fields(line) {
		if strings.HasPrefix(f, "/") {
			return f
		}
	}
	return ""
}

// ObsHandler returns an http.Handler exposing the library's observability
// surface:
//
//	/                 endpoint index (text)
//	/metrics          Prometheus text exposition of the metrics registry
//	/debug/vars       expvar JSON (includes the "blocksptrsv" registry)
//	/debug/pprof/*    pprof profiles (CPU, heap, goroutine, ...)
//	/explain          the configured plan dump (text)
//	/trace            Chrome trace_event JSON of the recorder's retained
//	                  steps (open in chrome://tracing or Perfetto);
//	                  ?format=table for text, ?format=summary for the
//	                  per-kind/per-kernel fold with step quantiles
//
// The handler holds no locks between requests and never touches the
// solve path; it is safe to serve while solves are running.
func ObsHandler(o ObsOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/{$}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "blocksptrsv observability endpoints:")
		fmt.Fprintln(w, "  /metrics        Prometheus text format")
		fmt.Fprintln(w, "  /debug/vars     expvar JSON")
		fmt.Fprintln(w, "  /debug/pprof/   pprof profiles")
		fmt.Fprintln(w, "  /explain        execution plan (if configured)")
		fmt.Fprintln(w, "  /trace          Chrome trace JSON of recent solves (if configured; ?format=table|summary)")
		seen := map[string]bool{
			"/": true, "/metrics": true, "/debug/vars": true,
			"/debug/pprof/": true, "/explain": true, "/trace": true,
		}
		for _, line := range o.Index {
			if p := indexPath(line); p != "" {
				if seen[p] {
					continue
				}
				seen[p] = true
			}
			fmt.Fprintln(w, "  "+line)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := metrics.WritePrometheus(w); err != nil {
			// Surfaces a scrape that failed before any byte was sent; a
			// mid-stream failure means the client is gone and the extra
			// status line is discarded with the rest.
			http.Error(w, "metrics write failed: "+err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/explain", func(w http.ResponseWriter, r *http.Request) {
		if o.Explain == nil {
			http.Error(w, "no explain source configured", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, o.Explain())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if o.Trace == nil {
			http.Error(w, "no trace recorder configured", http.StatusNotFound)
			return
		}
		switch r.URL.Query().Get("format") {
		case "", "chrome", "json":
			w.Header().Set("Content-Type", "application/json")
			if err := o.Trace.WriteChromeTrace(w); err != nil {
				http.Error(w, "trace write failed: "+err.Error(), http.StatusInternalServerError)
			}
		case "table":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := o.Trace.WriteTable(w); err != nil {
				http.Error(w, "trace write failed: "+err.Error(), http.StatusInternalServerError)
			}
		case "summary":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			sum := o.Trace.Summarize()
			fmt.Fprintf(w, "steps %d  solves %d  dropped %d\n", sum.Steps, sum.Solves, o.Trace.Dropped())
			fmt.Fprintf(w, "tri  %v over %d calls\n", sum.TriTime, sum.TriCalls)
			fmt.Fprintf(w, "spmv %v over %d calls\n", sum.SpMVTime, sum.SpMVCalls)
			fmt.Fprintf(w, "step duration p50 %v  p90 %v  p99 %v\n", sum.StepP50, sum.StepP90, sum.StepP99)
			kernels := make([]string, 0, len(sum.KernelTime))
			for kernel := range sum.KernelTime {
				kernels = append(kernels, kernel)
			}
			sort.Strings(kernels)
			for _, kernel := range kernels {
				fmt.Fprintf(w, "kernel %-20s %v over %d calls\n", kernel, sum.KernelTime[kernel], sum.KernelCalls[kernel])
			}
		default:
			http.Error(w, "unknown format (want chrome, table or summary)", http.StatusBadRequest)
		}
	})
	return mux
}
