package blocksptrsv_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	sptrsv "github.com/sss-lab/blocksptrsv"
)

// buildRandomLower assembles a well-conditioned lower-triangular system
// through the public Builder API.
func buildRandomLower(n int, density float64, seed int64) *sptrsv.Matrix[float64] {
	rng := rand.New(rand.NewSource(seed))
	b := sptrsv.NewBuilder[float64](n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if rng.Float64() < density {
				b.Add(i, j, 0.3*rng.NormFloat64()/float64(1+i-j))
			}
		}
		b.Add(i, i, 2+rng.Float64())
	}
	return b.BuildCSR()
}

func publicResidual(l *sptrsv.Matrix[float64], x, b []float64) float64 {
	worst := 0.0
	for i := 0; i < l.Rows; i++ {
		var sum float64
		for k := l.RowPtr[i]; k < l.RowPtr[i+1]; k++ {
			sum += l.Val[k] * x[l.ColIdx[k]]
		}
		if r := math.Abs(sum-b[i]) / (1 + math.Abs(b[i])); r > worst {
			worst = r
		}
	}
	return worst
}

func TestAnalyzeSolveRoundTrip(t *testing.T) {
	l := buildRandomLower(3000, 0.01, 1)
	s, err := sptrsv.Analyze(l, sptrsv.DefaultOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, l.Rows)
	for i := range b {
		b[i] = float64(i%11) - 5
	}
	x := make([]float64, l.Rows)
	s.Solve(b, x)
	if r := publicResidual(l, x, b); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
}

// TestPublicPlanCache drives the plan cache through the public API: a
// second Analyze over a fresh cache value on the same directory (a
// restart) must load the stored plan and still solve correctly, and a
// values-only update must hit.
func TestPublicPlanCache(t *testing.T) {
	dir := t.TempDir()
	l := buildRandomLower(2000, 0.01, 3)
	run := func(m *sptrsv.Matrix[float64]) *sptrsv.PlanCacheStats {
		cache, err := sptrsv.OpenPlanCache(sptrsv.PlanCacheConfig{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		opts := sptrsv.DefaultOptions(4)
		opts.PlanCache = cache
		s, err := sptrsv.Analyze(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, m.Rows)
		for i := range b {
			b[i] = float64(i%7) - 3
		}
		x := make([]float64, m.Rows)
		s.Solve(b, x)
		if r := publicResidual(m, x, b); r > 1e-9 {
			t.Fatalf("residual %g", r)
		}
		st := cache.Stats()
		return &st
	}
	if st := run(l); st.Stores != 1 {
		t.Fatalf("cold run: %+v", *st)
	}
	if st := run(l); st.Hits != 1 || st.Stores != 0 {
		t.Fatalf("warm run: %+v", *st)
	}
	// Same structure, new numbers: still a hit, solved with the new values.
	l2 := &sptrsv.Matrix[float64]{Rows: l.Rows, Cols: l.Cols, RowPtr: l.RowPtr, ColIdx: l.ColIdx,
		Val: make([]float64, len(l.Val))}
	for i, v := range l.Val {
		l2.Val[i] = 1.5 * v
	}
	if st := run(l2); st.Hits != 1 || st.Stores != 0 {
		t.Fatalf("values-only update run: %+v", *st)
	}
}

func TestAllPublicAlgorithmsAgree(t *testing.T) {
	l := buildRandomLower(1000, 0.02, 2)
	b := make([]float64, l.Rows)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	ref, err := sptrsv.NewSolver("serial", l, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, l.Rows)
	ref.Solve(b, want)
	for _, name := range sptrsv.Algorithms() {
		s, err := sptrsv.NewSolver(name, l, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		x := make([]float64, l.Rows)
		s.Solve(b, x)
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("%s deviates at %d: %g vs %g", name, i, x[i], want[i])
			}
		}
	}
}

func TestLowerTriangleAndOptionsVariants(t *testing.T) {
	full := sptrsv.GridSPD(25, 25)
	l, err := sptrsv.LowerTriangle(full, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []sptrsv.Kind{sptrsv.Recursive, sptrsv.ColumnBlock, sptrsv.RowBlock} {
		o := sptrsv.DefaultOptions(2)
		o.Kind = kind
		o.NSeg = 4
		o.MinBlockRows = 100
		s, err := sptrsv.Analyze(l, o)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, l.Rows)
		for i := range b {
			b[i] = 1
		}
		x := make([]float64, l.Rows)
		s.Solve(b, x)
		if r := publicResidual(l, x, b); r > 1e-9 {
			t.Fatalf("%v residual %g", kind, r)
		}
	}
}

func TestILU0PipelineUpperViaTranspose(t *testing.T) {
	a := sptrsv.GridSPD(20, 20)
	l, u, err := sptrsv.ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	// Solve U x = b by solving the lower system Uᵀ-style: transpose U and
	// run the lower solver, then verify against U directly.
	ut := sptrsv.Transpose(u)
	if !ut.IsLowerTriangular() {
		t.Fatal("Uᵀ not lower triangular")
	}
	sl, err := sptrsv.Analyze(l, sptrsv.DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = float64(1 + i%3)
	}
	y := make([]float64, a.Rows)
	sl.Solve(b, y)
	if r := publicResidual(l, y, b); r > 1e-9 {
		t.Fatalf("L-solve residual %g", r)
	}
}

func TestMatrixMarketPublicRoundTrip(t *testing.T) {
	m := buildRandomLower(50, 0.2, 3)
	var buf bytes.Buffer
	if err := sptrsv.WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := sptrsv.ReadMatrixMarket[float64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != m.NNZ() || back.Rows != m.Rows {
		t.Fatal("round trip changed shape")
	}
}

func TestReadMatrixMarketFileMissing(t *testing.T) {
	if _, err := sptrsv.ReadMatrixMarketFile[float64]("/nonexistent/file.mtx"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFromDenseAndUpper(t *testing.T) {
	m := sptrsv.FromDense(2, 2, []float64{4, 1, 0, 3})
	u, err := sptrsv.UpperTriangle(m, false)
	if err != nil {
		t.Fatal(err)
	}
	if u.NNZ() != 3 {
		t.Fatalf("upper nnz %d", u.NNZ())
	}
}

func TestSolverIntrospection(t *testing.T) {
	l := buildRandomLower(2000, 0.01, 4)
	o := sptrsv.DefaultOptions(2)
	o.MinBlockRows = 200
	s, err := sptrsv.Analyze(l, o)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumTriBlocks() < 2 {
		t.Fatalf("expected a split, got %d blocks", s.NumTriBlocks())
	}
	tr := s.Traffic()
	if tr.BUpdates < int64(l.Rows) || tr.XLoads <= 0 {
		t.Fatalf("traffic: %+v", tr)
	}
}

func TestDefaultOptionsWorkerOverride(t *testing.T) {
	o := sptrsv.DefaultOptions(3)
	if o.Pool != nil {
		t.Fatalf("expected lazy pool (nil until Analyze), got %T", o.Pool)
	}
	if o.Workers != 3 {
		t.Fatalf("workers: %d", o.Workers)
	}
	if o.Kind != sptrsv.Recursive || !o.Reorder || !o.Adaptive {
		t.Fatalf("defaults not paper defaults: %+v", o)
	}
}
