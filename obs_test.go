package blocksptrsv_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	sptrsv "github.com/sss-lab/blocksptrsv"
	"github.com/sss-lab/blocksptrsv/internal/block"
	"github.com/sss-lab/blocksptrsv/internal/daemon"
	"github.com/sss-lab/blocksptrsv/internal/gen"
	"github.com/sss-lab/blocksptrsv/internal/kernels"
	"github.com/sss-lab/blocksptrsv/internal/metrics"
)

// obsSolver builds a small preprocessed solver plus a traced solve, so
// every endpoint has something to show.
func obsSolver(t *testing.T) (*sptrsv.Solver[float64], *sptrsv.TraceRecorder) {
	t.Helper()
	l := lowerBidiagonal(400)
	s, err := sptrsv.Analyze(l, sptrsv.DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	rec := sptrsv.NewTraceRecorder(1 << 10)
	s.SetTrace(rec)
	b := make([]float64, l.Rows)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, l.Rows)
	s.Solve(b, x)
	return s, rec
}

// lowerBidiagonal builds a simple well-conditioned lower system.
func lowerBidiagonal(n int) *sptrsv.Matrix[float64] {
	bld := sptrsv.NewBuilder[float64](n, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			bld.Add(i, i-1, -0.5)
		}
		bld.Add(i, i, 2)
	}
	return bld.BuildCSR()
}

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	res := rw.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, string(body)
}

// TestObsHandlerMetrics: /metrics serves Prometheus text format that
// passes the format linter and carries the library's families
// (acceptance criterion for GET /metrics).
func TestObsHandlerMetrics(t *testing.T) {
	_, _ = obsSolver(t) // populate the registry with at least one solve
	h := sptrsv.ObsHandler(sptrsv.ObsOptions{})
	res, body := get(t, h, "/metrics")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if err := metrics.LintPrometheusText([]byte(body)); err != nil {
		t.Fatalf("/metrics fails the format linter: %v\n%s", err, body)
	}
	for _, want := range []string{
		"# TYPE blocksptrsv_solves_total counter",
		"# TYPE blocksptrsv_solve_seconds histogram",
		`blocksptrsv_solve_seconds_bucket{le="+Inf"}`,
		`blocksptrsv_solve_seconds_quantile{q="0.99"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestObsHandlerEndpoints(t *testing.T) {
	s, rec := obsSolver(t)
	h := sptrsv.ObsHandler(sptrsv.ObsOptions{Explain: s.Explain, Trace: rec})

	// Index lists every endpoint.
	res, body := get(t, h, "/")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET / = %d", res.StatusCode)
	}
	for _, want := range []string{"/metrics", "/debug/vars", "/debug/pprof/", "/explain", "/trace"} {
		if !strings.Contains(body, want) {
			t.Fatalf("index missing %q:\n%s", want, body)
		}
	}
	if res, _ := get(t, h, "/no-such-endpoint"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /no-such-endpoint = %d, want 404", res.StatusCode)
	}

	// /debug/vars is expvar: valid JSON including the published registry.
	res, body = get(t, h, "/debug/vars")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/vars = %d", res.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("expvar JSON invalid: %v", err)
	}
	if _, ok := vars["blocksptrsv"]; !ok {
		t.Fatal("expvar output missing the blocksptrsv registry")
	}

	// /debug/pprof/ index works (profiles themselves are pprof's concern).
	if res, _ := get(t, h, "/debug/pprof/"); res.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d", res.StatusCode)
	}

	// /explain is the plan dump, verbatim.
	res, body = get(t, h, "/explain")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /explain = %d", res.StatusCode)
	}
	if body != s.Explain() {
		t.Fatalf("/explain differs from Solver.Explain():\n%s", body)
	}

	// /trace serves Chrome trace JSON of the recorded solve.
	res, body = get(t, h, "/trace")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace = %d", res.StatusCode)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace JSON has no events despite a traced solve")
	}

	// Alternate trace renderings.
	if res, body := get(t, h, "/trace?format=table"); res.StatusCode != http.StatusOK || !strings.Contains(body, "kernel") {
		t.Fatalf("GET /trace?format=table = %d:\n%s", res.StatusCode, body)
	}
	if res, body := get(t, h, "/trace?format=summary"); res.StatusCode != http.StatusOK || !strings.Contains(body, "p99") {
		t.Fatalf("GET /trace?format=summary = %d:\n%s", res.StatusCode, body)
	}
	if res, _ := get(t, h, "/trace?format=martian"); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET /trace?format=martian = %d, want 400", res.StatusCode)
	}
}

// TestObsHandlerZeroAllocSolve extends the TestTraceDisabledAllocs
// contract across the HTTP layer: having an ObsHandler built around a
// solver (its explain hook and a recorder, attached or not) must add
// nothing to the solve path. Same closure-free setup as the block-level
// test: serial kernel, single triangle, one worker.
func TestObsHandlerZeroAllocSolve(t *testing.T) {
	l := gen.Banded(2000, 8, 0.2, 5)
	s, err := block.Preprocess(l, block.Options{
		Workers: 1, Kind: block.Recursive, MinBlockRows: l.Rows,
		ForceTri: kernels.TriSerial,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := gen.RandVec(l.Rows, 3)
	x := make([]float64, l.Rows)

	// Serving wired up but tracing disabled: the solve path still pays
	// only the nil-recorder check.
	rec := sptrsv.NewTraceRecorder(1 << 12)
	h := sptrsv.ObsHandler(sptrsv.ObsOptions{Explain: s.Explain, Trace: rec})
	if allocs := testing.AllocsPerRun(100, func() { s.Solve(b, x) }); allocs != 0 {
		t.Fatalf("solve with observability serving disabled allocates %.0f objects per run, want 0", allocs)
	}

	// Tracing armed into the served recorder: still allocation-free.
	s.SetTrace(rec)
	if allocs := testing.AllocsPerRun(100, func() { s.Solve(b, x) }); allocs != 0 {
		t.Fatalf("solve with observability serving enabled allocates %.0f objects per run, want 0", allocs)
	}

	// And the served endpoints see the solves that just ran.
	if res, body := get(t, h, "/trace?format=summary"); res.StatusCode != http.StatusOK || !strings.Contains(body, "solves") {
		t.Fatalf("GET /trace?format=summary after solves = %d:\n%s", res.StatusCode, body)
	}
}

// TestObsHandlerUnconfigured: the solver-specific endpoints answer 404
// until a source is configured; the process-wide ones always work.
func TestObsHandlerUnconfigured(t *testing.T) {
	h := sptrsv.ObsHandler(sptrsv.ObsOptions{})
	if res, _ := get(t, h, "/explain"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /explain = %d, want 404", res.StatusCode)
	}
	if res, _ := get(t, h, "/trace"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /trace = %d, want 404", res.StatusCode)
	}
	if res, _ := get(t, h, "/metrics"); res.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", res.StatusCode)
	}
}

// TestObsIndexListsEveryEndpointOnce is the index audit: with the
// daemon's IndexLines wired in, the index page advertises the whole
// service surface — the daemon endpoints (/debug/requests, /debug/flight
// among them) and the built-in observability endpoints — and no path
// appears twice, however redundantly the host assembles the Index list.
func TestObsIndexListsEveryEndpointOnce(t *testing.T) {
	lines := daemon.IndexLines()
	// A host that redundantly re-lists built-ins and repeats its own
	// lines must still produce a duplicate-free index.
	lines = append(lines, "/metrics        stale duplicate of a built-in")
	lines = append(lines, daemon.IndexLines()...)
	h := sptrsv.ObsHandler(sptrsv.ObsOptions{Index: lines})

	res, body := get(t, h, "/")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET / = %d", res.StatusCode)
	}
	want := []string{
		"/metrics", "/debug/vars", "/debug/pprof/", "/explain", "/trace",
		"/solve/{matrix}", "/matrices", "/healthz", "/debug/requests", "/debug/flight",
	}
	counts := map[string]int{}
	for _, line := range strings.Split(body, "\n") {
		for _, f := range strings.Fields(line) {
			if strings.HasPrefix(f, "/") {
				counts[f]++
				break
			}
		}
	}
	for _, path := range want {
		if counts[path] != 1 {
			t.Fatalf("index lists %q %d times, want exactly once:\n%s", path, counts[path], body)
		}
	}
	// Nothing beyond the audited surface sneaks in either.
	if got := len(counts); got != len(want) {
		t.Fatalf("index advertises %d paths, audit covers %d:\n%s", got, len(want), body)
	}
}
